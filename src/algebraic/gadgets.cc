#include "algebraic/gadgets.h"

#include "relational/builder.h"

namespace setrec {

Result<BinaryRelationRepresentation> MakeBinaryRelationSchema() {
  BinaryRelationRepresentation rep;
  rep.schema = std::make_unique<Schema>();
  SETREC_ASSIGN_OR_RETURN(rep.tuple_class, rep.schema->AddClass("T"));
  SETREC_ASSIGN_OR_RETURN(rep.domain_class, rep.schema->AddClass("Dom"));
  SETREC_ASSIGN_OR_RETURN(
      rep.first, rep.schema->AddProperty("A", rep.tuple_class,
                                         rep.domain_class));
  SETREC_ASSIGN_OR_RETURN(
      rep.second, rep.schema->AddProperty("B", rep.tuple_class,
                                          rep.domain_class));
  return rep;
}

Result<Instance> RepresentBinaryRelation(
    const BinaryRelationRepresentation& rep,
    std::span<const std::pair<std::uint32_t, std::uint32_t>> pairs) {
  Instance instance(rep.schema.get());
  std::uint32_t row = 0;
  for (const auto& [a, b] : pairs) {
    const ObjectId t(rep.tuple_class, row++);
    SETREC_RETURN_IF_ERROR(instance.AddObject(t));
    SETREC_RETURN_IF_ERROR(
        instance.AddObject(ObjectId(rep.domain_class, a)));
    SETREC_RETURN_IF_ERROR(
        instance.AddObject(ObjectId(rep.domain_class, b)));
    SETREC_RETURN_IF_ERROR(
        instance.AddEdge(t, rep.first, ObjectId(rep.domain_class, a)));
    SETREC_RETURN_IF_ERROR(
        instance.AddEdge(t, rep.second, ObjectId(rep.domain_class, b)));
  }
  return instance;
}

ExprPtr RecoverBinaryRelation(const BinaryRelationRepresentation& rep) {
  (void)rep;  // relation names are fixed by MakeBinaryRelationSchema
  // π_{A,B}(TA ⋈_{T=T2} ρ_{T→T2}(TB)).
  return ra::Project(
      ra::JoinEq(ra::Rel("TA"), ra::Rename(ra::Rel("TB"), "T", "T2"), "T",
                 "T2"),
      {"A", "B"});
}

Result<EquivalenceGadget> MakeEquivalenceGadget(const Schema& base,
                                                ExprPtr e1, ExprPtr e2) {
  EquivalenceGadget gadget;
  gadget.schema = std::make_unique<Schema>(base);
  SETREC_ASSIGN_OR_RETURN(gadget.gadget_class, gadget.schema->AddClass("G"));
  SETREC_ASSIGN_OR_RETURN(
      gadget.ga,
      gadget.schema->AddProperty("ga", gadget.gadget_class,
                                 gadget.gadget_class));
  SETREC_ASSIGN_OR_RETURN(
      gadget.gb,
      gadget.schema->AddProperty("gb", gadget.gadget_class,
                                 gadget.gadget_class));

  // ga := ∅ (an unsatisfiable selection keeps the expression constant-free).
  ExprPtr clear = ra::Project(ra::SelectNeq(ra::Rel("Gga"), "ga", "ga"),
                              {"ga"});

  // The "all ga-edges present" condition: Gga = G × ρ_{G→ga}(G).
  ExprPtr all_pairs =
      ra::Product(ra::Rel("G"), ra::Rename(ra::Rel("G"), "G", "ga"));
  ExprPtr missing = ra::Diff(std::move(all_pairs), ra::Rel("Gga"));
  ExprPtr have_missing = ra::Guard(missing);
  ExprPtr complete = ra::Diff(ra::Guard(ra::Rel("self")), have_missing);

  // gb := self·[complete]·[e1 ≠ ∅] ∪ self·[¬complete]·[e2 ≠ ∅].
  ExprPtr branch1 = ra::Product(ra::Product(ra::Rel("self"), complete),
                                ra::Guard(std::move(e1)));
  ExprPtr branch2 = ra::Product(ra::Product(ra::Rel("self"), have_missing),
                                ra::Guard(std::move(e2)));
  ExprPtr assign_b = ra::Union(std::move(branch1), std::move(branch2));

  SETREC_ASSIGN_OR_RETURN(
      gadget.method,
      AlgebraicUpdateMethod::Make(
          gadget.schema.get(), MethodSignature({gadget.gadget_class}),
          "equivalence_gadget",
          {UpdateStatement{gadget.ga, std::move(clear)},
           UpdateStatement{gadget.gb, std::move(assign_b)}}));
  return gadget;
}

Result<GadgetDemonstration> MakeGadgetDemonstration(
    const EquivalenceGadget& gadget, const Instance& base_instance) {
  if (&base_instance.schema() != gadget.schema.get()) {
    return Status::InvalidArgument(
        "the base instance must be built over the gadget's schema "
        "(gadget classes empty)");
  }
  if (!base_instance.objects(gadget.gadget_class).empty()) {
    return Status::InvalidArgument(
        "the base instance must not populate the gadget class");
  }
  Instance instance = base_instance;
  const ObjectId o(gadget.gadget_class, 0);
  const ObjectId o2(gadget.gadget_class, 1);
  SETREC_RETURN_IF_ERROR(instance.AddObject(o));
  SETREC_RETURN_IF_ERROR(instance.AddObject(o2));
  for (ObjectId src : {o, o2}) {
    for (ObjectId dst : {o, o2}) {
      SETREC_RETURN_IF_ERROR(instance.AddEdge(src, gadget.ga, dst));
      SETREC_RETURN_IF_ERROR(instance.AddEdge(src, gadget.gb, dst));
    }
  }
  return GadgetDemonstration{std::move(instance), Receiver::Unchecked({o}),
                             Receiver::Unchecked({o2})};
}

}  // namespace setrec
