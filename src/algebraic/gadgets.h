#ifndef SETREC_ALGEBRAIC_GADGETS_H_
#define SETREC_ALGEBRAIC_GADGETS_H_

#include <memory>
#include <span>
#include <utility>

#include "algebraic/algebraic_method.h"

namespace setrec {

/// The reduction constructions of Section 5's negative results.

/// Lemma 5.3: an arbitrary binary relation r = {(a1,b1), ..., (an,bn)} can
/// be represented by an object base over a schema with a tuple class T and
/// a domain class D, with edges (T, A, D) and (T, B, D): each pair becomes
/// an abstract T-node t_i with A- and B-edges to its components. The
/// expression π_{A,B}(TA ⋈ TB) recovers r, which transports relational
/// (un)satisfiability questions into the object-base world.
struct BinaryRelationRepresentation {
  std::unique_ptr<Schema> schema;
  ClassId tuple_class = 0;
  ClassId domain_class = 0;
  PropertyId first = 0;   // label "A"
  PropertyId second = 0;  // label "B"
};

Result<BinaryRelationRepresentation> MakeBinaryRelationSchema();

/// Builds the representing instance for `pairs` (values are D-indices).
Result<Instance> RepresentBinaryRelation(
    const BinaryRelationRepresentation& rep,
    std::span<const std::pair<std::uint32_t, std::uint32_t>> pairs);

/// The recovery expression π_{A,B}(TA ⋈_{T=T'} ρ(TB)), result scheme (A, B)
/// over domain D.
ExprPtr RecoverBinaryRelation(const BinaryRelationRepresentation& rep);

/// Theorem 5.6, first half: expression equivalence reduces to order
/// independence. Given two expressions e1, e2 over the object relations of
/// `base`, augments the schema with a fresh class G carrying properties
/// ga, gb : G → G, and builds the method M of type [G]
///
///   ga := ∅;
///   gb := if Gga = G × G then (if e1 ≠ ∅ then self else ∅)
///                        else (if e2 ≠ ∅ then self else ∅)
///
/// which is order independent iff e1 and e2 are equivalent over object-base
/// instances of `base`: on the two-object gadget instance with all ga-edges
/// present, the first application takes the e1 branch and destroys the
/// all-edges condition, so the second takes the e2 branch — the orders
/// disagree exactly on instances where e1 and e2 disagree about emptiness.
/// (The conditionals use nullary guards and difference, so the method is
/// NOT positive — which is the content of Corollary 5.7.)
struct EquivalenceGadget {
  std::unique_ptr<Schema> schema;  // base plus the gadget class
  ClassId gadget_class = 0;
  PropertyId ga = 0;
  PropertyId gb = 0;
  std::unique_ptr<AlgebraicUpdateMethod> method;
};

/// `base` is copied; e1/e2 may have any result scheme (they are wrapped in
/// π_∅ guards). Fails if `base` already uses the names "G", "ga", "gb".
Result<EquivalenceGadget> MakeEquivalenceGadget(const Schema& base,
                                                ExprPtr e1, ExprPtr e2);

/// The demonstration package from the proof: extends `instance` (over the
/// gadget schema, with no G-objects) by two G-objects carrying all four
/// ga- and gb-edges, and returns the two single-object receivers whose two
/// application orders disagree iff e1, e2 disagree about emptiness on
/// `instance`.
struct GadgetDemonstration {
  Instance instance;
  Receiver first;
  Receiver second;
};
Result<GadgetDemonstration> MakeGadgetDemonstration(
    const EquivalenceGadget& gadget, const Instance& base_instance);

}  // namespace setrec

#endif  // SETREC_ALGEBRAIC_GADGETS_H_
