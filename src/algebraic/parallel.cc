#include "algebraic/parallel.h"

#include <map>
#include <set>

#include "core/sequential.h"
#include "relational/builder.h"
#include "relational/evaluator.h"

namespace setrec {

Result<RelationScheme> RecScheme(const MethodSignature& signature) {
  std::vector<Attribute> attrs;
  attrs.push_back(Attribute{kSelfRelation, signature.receiving_class()});
  for (std::size_t i = 0; i < signature.num_args(); ++i) {
    attrs.push_back(Attribute{ArgRelationName(i), signature.arg_class(i)});
  }
  return RelationScheme::Make(std::move(attrs));
}

Result<Catalog> ParCatalog(const MethodContext& context) {
  // Rebuild from the object schema (dropping self/arg singletons), then add
  // rec.
  SETREC_ASSIGN_OR_RETURN(Catalog catalog, EncodeCatalog(*context.schema));
  SETREC_ASSIGN_OR_RETURN(RelationScheme rec, RecScheme(context.signature));
  SETREC_RETURN_IF_ERROR(catalog.AddRelation(kRecRelation, std::move(rec)));
  return catalog;
}

namespace {

/// Natural join of two par-transformed expressions on the shared `self`
/// attribute: σ_{self=self§}(l × ρ_{self→self§}(r)) projected back onto
/// attrs(l) ++ (attrs(r) − self). The throwaway attribute name cannot clash
/// because it is projected away immediately.
constexpr const char kJoinTemp[] = "self§";

Result<ExprPtr> NatJoinOnSelf(const ExprPtr& l, const ExprPtr& r,
                              const Catalog& catalog) {
  SETREC_ASSIGN_OR_RETURN(RelationScheme ls, InferScheme(*l, catalog));
  SETREC_ASSIGN_OR_RETURN(RelationScheme rs, InferScheme(*r, catalog));
  ExprPtr joined = ra::SelectEq(
      ra::Product(l, ra::Rename(r, kSelfRelation, kJoinTemp)), kSelfRelation,
      kJoinTemp);
  std::vector<std::string> keep;
  for (const Attribute& a : ls.attributes()) keep.push_back(a.name);
  for (const Attribute& a : rs.attributes()) {
    if (a.name != kSelfRelation) keep.push_back(a.name);
  }
  return ra::Project(std::move(joined), std::move(keep));
}

Result<ExprPtr> Transform(const ExprPtr& expr, const MethodContext& context,
                          const Catalog& par_catalog) {
  const MethodSignature& sig = context.signature;
  switch (expr->op()) {
    case Expr::Op::kRelation: {
      const std::string& name = expr->relation_name();
      if (name == kSelfRelation) {
        return ra::Project(ra::Rel(kRecRelation), {kSelfRelation});
      }
      for (std::size_t i = 0; i < sig.num_args(); ++i) {
        if (name == ArgRelationName(i)) {
          return ra::Project(ra::Rel(kRecRelation),
                             {kSelfRelation, ArgRelationName(i)});
        }
      }
      return ra::Product(ra::Project(ra::Rel(kRecRelation), {kSelfRelation}),
                         ra::Rel(name));
    }
    case Expr::Op::kUnion:
    case Expr::Op::kDifference: {
      SETREC_ASSIGN_OR_RETURN(ExprPtr l,
                              Transform(expr->left(), context, par_catalog));
      SETREC_ASSIGN_OR_RETURN(ExprPtr r,
                              Transform(expr->right(), context, par_catalog));
      return expr->op() == Expr::Op::kUnion
                 ? ra::Union(std::move(l), std::move(r))
                 : ra::Diff(std::move(l), std::move(r));
    }
    case Expr::Op::kProduct: {
      SETREC_ASSIGN_OR_RETURN(ExprPtr l,
                              Transform(expr->left(), context, par_catalog));
      SETREC_ASSIGN_OR_RETURN(ExprPtr r,
                              Transform(expr->right(), context, par_catalog));
      return NatJoinOnSelf(l, r, par_catalog);
    }
    case Expr::Op::kSelectEq:
    case Expr::Op::kSelectNeq: {
      SETREC_ASSIGN_OR_RETURN(ExprPtr c,
                              Transform(expr->child(), context, par_catalog));
      return expr->op() == Expr::Op::kSelectEq
                 ? ra::SelectEq(std::move(c), expr->attr_a(), expr->attr_b())
                 : ra::SelectNeq(std::move(c), expr->attr_a(), expr->attr_b());
    }
    case Expr::Op::kProject: {
      SETREC_ASSIGN_OR_RETURN(ExprPtr c,
                              Transform(expr->child(), context, par_catalog));
      std::vector<std::string> attrs;
      attrs.push_back(kSelfRelation);
      for (const std::string& a : expr->projection()) attrs.push_back(a);
      return ra::Project(std::move(c), std::move(attrs));
    }
    case Expr::Op::kRename: {
      if (expr->rename_from() == kSelfRelation ||
          expr->rename_to() == kSelfRelation) {
        return Status::InvalidArgument(
            "par(E) cannot rename the reserved attribute self");
      }
      SETREC_ASSIGN_OR_RETURN(ExprPtr c,
                              Transform(expr->child(), context, par_catalog));
      return ra::Rename(std::move(c), expr->rename_from(), expr->rename_to());
    }
  }
  return Status::Internal("unknown expression operator");
}

}  // namespace

Result<ExprPtr> ParTransform(const ExprPtr& expr,
                             const MethodContext& context) {
  SETREC_ASSIGN_OR_RETURN(Catalog par_catalog, ParCatalog(context));
  return Transform(expr, context, par_catalog);
}

Result<Instance> ParallelApply(const AlgebraicUpdateMethod& method,
                               const Instance& instance,
                               std::span<const Receiver> receivers,
                               ExecContext& ctx) {
  const MethodContext& mctx = method.context();
  std::vector<Receiver> set = CanonicalReceiverSet(receivers);
  for (const Receiver& t : set) {
    if (!t.IsValidOver(mctx.signature, instance)) {
      return Status::FailedPrecondition(
          "receiver not valid over the instance");
    }
  }

  SETREC_ASSIGN_OR_RETURN(Database db, EncodeInstance(instance));
  SETREC_ASSIGN_OR_RETURN(RelationScheme rec_scheme,
                          RecScheme(mctx.signature));
  Relation rec(rec_scheme);
  for (const Receiver& t : set) {
    std::vector<ObjectId> values;
    values.reserve(t.size());
    for (std::size_t i = 0; i < t.size(); ++i) {
      values.push_back(t.object_at(i));
    }
    SETREC_RETURN_IF_ERROR(rec.Insert(Tuple(std::move(values))));
  }
  db.Put(kRecRelation, std::move(rec));

  // Evaluate one par(E) per statement, all against the input snapshot.
  Evaluator evaluator(&db, ctx);
  struct StatementResult {
    PropertyId property;
    std::map<ObjectId, std::vector<ObjectId>> targets_by_receiver;
  };
  std::vector<StatementResult> results;
  for (const UpdateStatement& s : method.statements()) {
    SETREC_RETURN_IF_ERROR(ctx.CheckPoint("parallel/statement"));
    SETREC_ASSIGN_OR_RETURN(ExprPtr par_expr, ParTransform(s.expression, mctx));
    SETREC_ASSIGN_OR_RETURN(Relation r, evaluator.Eval(par_expr));
    SETREC_ASSIGN_OR_RETURN(std::size_t self_idx,
                            r.scheme().IndexOf(kSelfRelation));
    if (r.scheme().arity() != 2) {
      return Status::Internal("par(E) must produce a binary relation");
    }
    const std::size_t value_idx = 1 - self_idx;
    StatementResult sr;
    sr.property = s.property;
    for (const Tuple& t : r) {
      sr.targets_by_receiver[t.at(self_idx)].push_back(t.at(value_idx));
    }
    results.push_back(std::move(sr));
  }

  Instance out = instance;
  for (const StatementResult& sr : results) {
    for (const Receiver& t : set) {
      const ObjectId o0 = t.receiving_object();
      SETREC_RETURN_IF_ERROR(out.ClearEdgesFrom(o0, sr.property));
    }
    for (const Receiver& t : set) {
      const ObjectId o0 = t.receiving_object();
      auto it = sr.targets_by_receiver.find(o0);
      if (it == sr.targets_by_receiver.end()) continue;
      for (ObjectId target : it->second) {
        SETREC_RETURN_IF_ERROR(ctx.CheckPoint("parallel/edge"));
        SETREC_RETURN_IF_ERROR(out.AddEdge(o0, sr.property, target));
      }
    }
  }
  return out;
}

}  // namespace setrec
