#include "algebraic/parallel.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <utility>
#include <vector>

#include "core/sequential.h"
#include "relational/builder.h"
#include "relational/evaluator.h"

namespace setrec {

Result<RelationScheme> RecScheme(const MethodSignature& signature) {
  std::vector<Attribute> attrs;
  attrs.push_back(Attribute{kSelfRelation, signature.receiving_class()});
  for (std::size_t i = 0; i < signature.num_args(); ++i) {
    attrs.push_back(Attribute{ArgRelationName(i), signature.arg_class(i)});
  }
  return RelationScheme::Make(std::move(attrs));
}

Result<Catalog> ParCatalog(const MethodContext& context) {
  // Rebuild from the object schema (dropping self/arg singletons), then add
  // rec.
  SETREC_ASSIGN_OR_RETURN(Catalog catalog, EncodeCatalog(*context.schema));
  SETREC_ASSIGN_OR_RETURN(RelationScheme rec, RecScheme(context.signature));
  SETREC_RETURN_IF_ERROR(catalog.AddRelation(kRecRelation, std::move(rec)));
  return catalog;
}

namespace {

/// Natural join of two par-transformed expressions on the shared `self`
/// attribute: σ_{self=self§}(l × ρ_{self→self§}(r)) projected back onto
/// attrs(l) ++ (attrs(r) − self). The throwaway attribute name cannot clash
/// because it is projected away immediately.
constexpr const char kJoinTemp[] = "self§";

Result<ExprPtr> NatJoinOnSelf(const ExprPtr& l, const ExprPtr& r,
                              const Catalog& catalog) {
  SETREC_ASSIGN_OR_RETURN(RelationScheme ls, InferScheme(*l, catalog));
  SETREC_ASSIGN_OR_RETURN(RelationScheme rs, InferScheme(*r, catalog));
  ExprPtr joined = ra::SelectEq(
      ra::Product(l, ra::Rename(r, kSelfRelation, kJoinTemp)), kSelfRelation,
      kJoinTemp);
  std::vector<std::string> keep;
  for (const Attribute& a : ls.attributes()) keep.push_back(a.name);
  for (const Attribute& a : rs.attributes()) {
    if (a.name != kSelfRelation) keep.push_back(a.name);
  }
  return ra::Project(std::move(joined), std::move(keep));
}

Result<ExprPtr> Transform(const ExprPtr& expr, const MethodContext& context,
                          const Catalog& par_catalog) {
  const MethodSignature& sig = context.signature;
  switch (expr->op()) {
    case Expr::Op::kRelation: {
      const std::string& name = expr->relation_name();
      if (name == kSelfRelation) {
        return ra::Project(ra::Rel(kRecRelation), {kSelfRelation});
      }
      for (std::size_t i = 0; i < sig.num_args(); ++i) {
        if (name == ArgRelationName(i)) {
          return ra::Project(ra::Rel(kRecRelation),
                             {kSelfRelation, ArgRelationName(i)});
        }
      }
      return ra::Product(ra::Project(ra::Rel(kRecRelation), {kSelfRelation}),
                         ra::Rel(name));
    }
    case Expr::Op::kUnion:
    case Expr::Op::kDifference: {
      SETREC_ASSIGN_OR_RETURN(ExprPtr l,
                              Transform(expr->left(), context, par_catalog));
      SETREC_ASSIGN_OR_RETURN(ExprPtr r,
                              Transform(expr->right(), context, par_catalog));
      return expr->op() == Expr::Op::kUnion
                 ? ra::Union(std::move(l), std::move(r))
                 : ra::Diff(std::move(l), std::move(r));
    }
    case Expr::Op::kProduct: {
      SETREC_ASSIGN_OR_RETURN(ExprPtr l,
                              Transform(expr->left(), context, par_catalog));
      SETREC_ASSIGN_OR_RETURN(ExprPtr r,
                              Transform(expr->right(), context, par_catalog));
      return NatJoinOnSelf(l, r, par_catalog);
    }
    case Expr::Op::kSelectEq:
    case Expr::Op::kSelectNeq: {
      SETREC_ASSIGN_OR_RETURN(ExprPtr c,
                              Transform(expr->child(), context, par_catalog));
      return expr->op() == Expr::Op::kSelectEq
                 ? ra::SelectEq(std::move(c), expr->attr_a(), expr->attr_b())
                 : ra::SelectNeq(std::move(c), expr->attr_a(), expr->attr_b());
    }
    case Expr::Op::kProject: {
      SETREC_ASSIGN_OR_RETURN(ExprPtr c,
                              Transform(expr->child(), context, par_catalog));
      std::vector<std::string> attrs;
      attrs.push_back(kSelfRelation);
      for (const std::string& a : expr->projection()) attrs.push_back(a);
      return ra::Project(std::move(c), std::move(attrs));
    }
    case Expr::Op::kRename: {
      if (expr->rename_from() == kSelfRelation ||
          expr->rename_to() == kSelfRelation) {
        return Status::InvalidArgument(
            "par(E) cannot rename the reserved attribute self");
      }
      SETREC_ASSIGN_OR_RETURN(ExprPtr c,
                              Transform(expr->child(), context, par_catalog));
      return ra::Rename(std::move(c), expr->rename_from(), expr->rename_to());
    }
  }
  return Status::Internal("unknown expression operator");
}

}  // namespace

Result<ExprPtr> ParTransform(const ExprPtr& expr,
                             const MethodContext& context) {
  SETREC_ASSIGN_OR_RETURN(Catalog par_catalog, ParCatalog(context));
  return Transform(expr, context, par_catalog);
}

namespace {

/// Output of evaluating the par(E) pipelines over one receiver shard: for
/// each statement, the receiving-object → result-objects map restricted to
/// the shard's receivers.
struct ShardResult {
  Status status = Status::OK();
  std::vector<std::map<ObjectId, std::vector<ObjectId>>> per_statement;
};

/// Evaluates every par(E) expression against `base` plus rec = `shard`.
/// `base` is shared read-only across concurrent shards; the per-shard
/// Database copy is shallow (relations behind shared storage), so the cost
/// per shard is O(#relations), not O(instance).
ShardResult EvalShard(const Database& base, const RelationScheme& rec_scheme,
                      std::span<const Receiver> shard,
                      std::span<const ExprPtr> par_exprs, ExecContext& ctx,
                      ExecBackend backend) {
  ShardResult out;
  out.status = ctx.CheckPoint("parallel/shard");
  if (!out.status.ok()) return out;
  TraceSpan span = StartSpan(ctx, "parallel/shard");
  if (ctx.metrics() != nullptr) ctx.metrics()->engine.parallel_shards.Add(1);

  Relation rec(rec_scheme);
  rec.Reserve(shard.size());
  for (const Receiver& t : shard) {
    std::vector<ObjectId> values;
    values.reserve(t.size());
    for (std::size_t i = 0; i < t.size(); ++i) {
      values.push_back(t.object_at(i));
    }
    out.status = rec.Insert(Tuple(std::move(values)));
    if (!out.status.ok()) return out;
  }
  Database db = base;
  db.Put(kRecRelation, std::move(rec));

  Evaluator evaluator(&db, ctx);
  evaluator.set_backend(backend);
  out.per_statement.reserve(par_exprs.size());
  for (const ExprPtr& par_expr : par_exprs) {
    Result<Relation> r = evaluator.Eval(par_expr);
    if (!r.ok()) {
      out.status = r.status();
      return out;
    }
    Result<std::size_t> self_idx = r->scheme().IndexOf(kSelfRelation);
    if (!self_idx.ok()) {
      out.status = self_idx.status();
      return out;
    }
    if (r->scheme().arity() != 2) {
      out.status = Status::Internal("par(E) must produce a binary relation");
      return out;
    }
    const std::size_t value_idx = 1 - *self_idx;
    std::map<ObjectId, std::vector<ObjectId>> targets;
    for (const Tuple& t : *r) {
      targets[t.at(*self_idx)].push_back(t.at(value_idx));
    }
    out.per_statement.push_back(std::move(targets));
  }
  return out;
}

/// Cuts the canonical receiver enumeration into at most `num_shards`
/// contiguous [begin, end) ranges of roughly equal size, never separating
/// receivers that share a receiving object: par(E) decomposes exactly along
/// `self` slices, and a slice is the full set of rec tuples with that self
/// value (receivers differing only in arguments interact through the
/// π_{self,arg_i}(rec) leaves). Canonical order sorts by the full object
/// vector, so same-self receivers are already adjacent.
std::vector<std::pair<std::size_t, std::size_t>> ShardBoundaries(
    std::span<const Receiver> set, std::size_t num_shards) {
  std::vector<std::pair<std::size_t, std::size_t>> bounds;
  const std::size_t n = set.size();
  if (n == 0) return bounds;
  const std::size_t target =
      std::max<std::size_t>(1, (n + num_shards - 1) / num_shards);
  std::size_t begin = 0;
  while (begin < n) {
    std::size_t end = std::min(begin + target, n);
    while (end < n &&
           set[end].receiving_object() == set[end - 1].receiving_object()) {
      ++end;
    }
    bounds.emplace_back(begin, end);
    begin = end;
  }
  return bounds;
}

}  // namespace

Result<Instance> ParallelApply(const AlgebraicUpdateMethod& method,
                               const Instance& instance,
                               std::span<const Receiver> receivers,
                               const ParallelOptions& options,
                               ExecContext& ctx) {
  const MethodContext& mctx = method.context();
  TraceSpan apply_span = StartSpan(ctx, "parallel/apply");
  MetricsRegistry* metrics = ctx.metrics();
  std::vector<Receiver> set = CanonicalReceiverSet(receivers);
  for (const Receiver& t : set) {
    if (!t.IsValidOver(mctx.signature, instance)) {
      return Status::FailedPrecondition(
          "receiver not valid over the instance");
    }
  }

  SETREC_ASSIGN_OR_RETURN(Database db, EncodeInstance(instance));
  SETREC_ASSIGN_OR_RETURN(RelationScheme rec_scheme,
                          RecScheme(mctx.signature));

  // Rewrite one par(E) per statement up front; the expression DAGs are
  // immutable and shared read-only by all shards.
  std::vector<ExprPtr> par_exprs;
  par_exprs.reserve(method.statements().size());
  {
    TraceSpan rewrite_span = StartSpan(ctx, "parallel/rewrite");
    for (const UpdateStatement& s : method.statements()) {
      SETREC_RETURN_IF_ERROR(ctx.CheckPoint("parallel/statement"));
      SETREC_ASSIGN_OR_RETURN(ExprPtr par_expr,
                              ParTransform(s.expression, mctx));
      par_exprs.push_back(std::move(par_expr));
    }
  }

  const std::size_t requested = std::max<std::size_t>(1, options.num_workers);
  const std::vector<std::pair<std::size_t, std::size_t>> bounds =
      ShardBoundaries(set, requested);
  std::vector<ShardResult> results(bounds.size());
  if (bounds.size() <= 1) {
    // Single shard: evaluate on the calling thread under `ctx` directly —
    // this is exactly the classic sequential-runtime path.
    if (!bounds.empty()) {
      results[0] = EvalShard(
          db, rec_scheme,
          std::span<const Receiver>(set).subspan(
              bounds[0].first, bounds[0].second - bounds[0].first),
          par_exprs, ctx, options.backend);
    }
  } else {
    std::vector<ExecContext> children;
    children.reserve(bounds.size());
    for (std::size_t s = 0; s < bounds.size(); ++s) {
      children.push_back(ctx.Fork());
    }
    auto run_shard = [&](std::size_t s) {
      results[s] = EvalShard(
          db, rec_scheme,
          std::span<const Receiver>(set).subspan(
              bounds[s].first, bounds[s].second - bounds[s].first),
          par_exprs, children[s], options.backend);
    };
    if (options.pool != nullptr) {
      options.pool->ParallelFor(bounds.size(), run_shard);
    } else {
      ThreadPool transient(std::min(requested, bounds.size()));
      transient.ParallelFor(bounds.size(), run_shard);
    }
  }
  // Deterministic error reporting: the first failing shard in shard order
  // wins (a shared tripped budget makes several shards fail; which ones is
  // scheduling-dependent, but shard 0's view of it is not).
  for (const ShardResult& r : results) {
    SETREC_RETURN_IF_ERROR(r.status);
  }

  // Merge: shards partition the canonical enumeration contiguously, so
  // iterating shards in order and receivers within each shard reproduces
  // the canonical receiver order of the single-threaded path exactly.
  TraceSpan merge_span = StartSpan(ctx, "parallel/merge");
  Instance out = instance;
  const std::span<const UpdateStatement> statements = method.statements();
  for (std::size_t i = 0; i < statements.size(); ++i) {
    const PropertyId property = statements[i].property;
    for (const Receiver& t : set) {
      SETREC_RETURN_IF_ERROR(
          out.ClearEdgesFrom(t.receiving_object(), property));
    }
    for (std::size_t s = 0; s < bounds.size(); ++s) {
      const auto merge_start = std::chrono::steady_clock::now();
      const auto& targets = results[s].per_statement[i];
      for (std::size_t k = bounds[s].first; k < bounds[s].second; ++k) {
        const ObjectId o0 = set[k].receiving_object();
        auto it = targets.find(o0);
        if (it == targets.end()) continue;
        for (ObjectId target : it->second) {
          SETREC_RETURN_IF_ERROR(ctx.CheckPoint("parallel/edge"));
          if (metrics != nullptr) metrics->engine.apply_edges.Add(1);
          SETREC_RETURN_IF_ERROR(out.AddEdge(o0, property, target));
        }
      }
      if (metrics != nullptr) {
        metrics->engine.shard_merge_ns.Observe(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - merge_start)
                .count()));
      }
    }
  }
  return out;
}

Result<Instance> ParallelApply(const AlgebraicUpdateMethod& method,
                               const Instance& instance,
                               std::span<const Receiver> receivers,
                               const ExecOptions& options) {
  ExecScope scope(options);
  ParallelOptions par;
  par.num_workers = options.num_workers;
  par.pool = options.pool;
  par.backend = options.backend;
  Result<Instance> result =
      ParallelApply(method, instance, receivers, par, scope.ctx());
  if (result.ok() && options.view_cache != nullptr) {
    // Advisory publication: the cache fails closed on its own when it
    // cannot absorb a delta, so errors here do not fail the apply.
    (void)options.view_cache->ApplyDelta(DiffInstances(instance, *result));
  }
  return result;
}

Result<Instance> ParallelApply(const AlgebraicUpdateMethod& method,
                               const Instance& instance,
                               std::span<const Receiver> receivers,
                               ExecContext& ctx) {
  return ParallelApply(method, instance, receivers, ParallelOptions{}, ctx);
}

}  // namespace setrec
