#include "algebraic/update_expression.h"

namespace setrec {

std::string ArgRelationName(std::size_t i) {
  return "arg" + std::to_string(i + 1);
}

std::string PrimedName(const std::string& name) { return name + "'"; }

namespace {

/// Adds self/argi (optionally primed) relation schemes and their
/// dependencies.
Status AddReceiverRelations(const Schema& schema,
                            const MethodSignature& signature, bool primed,
                            Catalog& catalog, DependencySet& deps) {
  for (std::size_t i = 0; i < signature.size(); ++i) {
    std::string base = i == 0 ? kSelfRelation : ArgRelationName(i - 1);
    if (primed) base = PrimedName(base);
    const ClassId domain = signature.class_at(i);
    SETREC_ASSIGN_OR_RETURN(RelationScheme scheme,
                            RelationScheme::Make({Attribute{base, domain}}));
    SETREC_RETURN_IF_ERROR(catalog.AddRelation(base, std::move(scheme)));
    // At most one tuple: ∅ → attr (proof of Theorem 5.6, requirement (i)).
    deps.fds.push_back(FunctionalDependency{base, {}, base});
    // The receiver is an object present in the instance (Definition 2.5).
    deps.inds.push_back(
        InclusionDependency{base, {base}, schema.class_name(domain)});
  }
  return Status::OK();
}

}  // namespace

Result<MethodContext> BuildMethodContext(const Schema* schema,
                                         const MethodSignature& signature) {
  MethodContext context;
  context.schema = schema;
  context.signature = signature;
  SETREC_ASSIGN_OR_RETURN(context.catalog, EncodeCatalog(*schema));
  context.deps = InducedDependencies(*schema);
  SETREC_RETURN_IF_ERROR(AddReceiverRelations(
      *schema, signature, /*primed=*/false, context.catalog, context.deps));
  context.reduction_catalog = context.catalog;
  context.reduction_deps = context.deps;
  SETREC_RETURN_IF_ERROR(AddReceiverRelations(*schema, signature,
                                              /*primed=*/true,
                                              context.reduction_catalog,
                                              context.reduction_deps));
  return context;
}

Status InstallReceiverRelations(Database& db, const MethodContext& context,
                                const Receiver& receiver, bool primed) {
  const MethodSignature& signature = context.signature;
  if (receiver.size() != signature.size()) {
    return Status::InvalidArgument("receiver arity does not match signature");
  }
  for (std::size_t i = 0; i < signature.size(); ++i) {
    std::string base = i == 0 ? kSelfRelation : ArgRelationName(i - 1);
    if (primed) base = PrimedName(base);
    const Catalog& catalog =
        primed ? context.reduction_catalog : context.catalog;
    SETREC_ASSIGN_OR_RETURN(const RelationScheme* scheme, catalog.Find(base));
    Relation rel(*scheme);
    SETREC_RETURN_IF_ERROR(rel.Insert(Tuple{receiver.object_at(i)}));
    db.Put(base, std::move(rel));
  }
  return Status::OK();
}

Status ValidateUpdateExpression(const MethodContext& context,
                                PropertyId property, const ExprPtr& expr) {
  const Schema& schema = *context.schema;
  if (!schema.HasProperty(property)) {
    return Status::InvalidArgument("unknown property in update statement");
  }
  const Schema::PropertyDef& def = schema.property(property);
  if (def.source != context.signature.receiving_class()) {
    return Status::InvalidArgument(
        "algebraic methods may only update properties of the receiving "
        "class (Section 5.2); property " +
        def.name + " belongs to " + schema.class_name(def.source));
  }
  SETREC_ASSIGN_OR_RETURN(RelationScheme scheme,
                          InferScheme(*expr, context.catalog));
  if (scheme.arity() != 1) {
    return Status::InvalidArgument(
        "update expressions must be unary (Definition 5.4(1)); got arity " +
        std::to_string(scheme.arity()));
  }
  if (scheme.attribute(0).domain != def.target) {
    return Status::InvalidArgument(
        "update expression domain must be the property's target class " +
        schema.class_name(def.target));
  }
  return Status::OK();
}

}  // namespace setrec
