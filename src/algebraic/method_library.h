#ifndef SETREC_ALGEBRAIC_METHOD_LIBRARY_H_
#define SETREC_ALGEBRAIC_METHOD_LIBRARY_H_

#include <memory>

#include "algebraic/algebraic_method.h"
#include "core/exec_context.h"

namespace setrec {

/// Every named schema and method from the paper, ready to instantiate. The
/// schemas own their Schema objects; methods hold pointers into them, so a
/// schema struct must outlive the methods created from it.

// ---------------------------------------------------------------------------
// Ullman's drinkers schema (Examples 2.3, 2.7, 3.2, 4.15, 5.5, 5.9, 5.11),
// with the paper's Section 5 abbreviations: classes D, Ba, Be and properties
// f(requents): D→Ba, l(ikes): D→Be, s(erves): Ba→Be.
// ---------------------------------------------------------------------------
struct DrinkersSchema {
  Schema schema;
  ClassId drinker = 0, bar = 0, beer = 0;
  PropertyId frequents = 0, likes = 0, serves = 0;
};
Result<DrinkersSchema> MakeDrinkersSchema();

/// add_bar [D, Ba] (Examples 2.7/5.5): f := π_f(self ⋈_{self=D} Df) ∪ arg1.
/// Order independent, but violates the Proposition 5.8 condition
/// (Example 5.9).
Result<std::unique_ptr<AlgebraicUpdateMethod>> MakeAddBar(
    const DrinkersSchema& s);

/// favorite_bar [D, Ba] (Examples 2.7/5.5): f := arg1. Key-order independent
/// but not order independent (Example 3.2).
Result<std::unique_ptr<AlgebraicUpdateMethod>> MakeFavoriteBar(
    const DrinkersSchema& s);

/// delete_bar [D, Ba] (Example 5.11): f := π_f(self ⋈_{self=D} Df ⋈_{f≠arg1}
/// arg1) — positive methods can still delete information.
Result<std::unique_ptr<AlgebraicUpdateMethod>> MakeDeleteBar(
    const DrinkersSchema& s);

/// The Example 4.15 method [D]: adds to the frequented bars all bars serving
/// a beer the receiving drinker likes. Inflationary; minimal coloring is
/// simple; order independent.
Result<std::unique_ptr<AlgebraicUpdateMethod>> MakeLikesServesBar(
    const DrinkersSchema& s);

/// clear_bars [D]: f := ∅ (an unsatisfiable selection; constant-free).
/// Trivially order independent: each receiver clears only its own row.
Result<std::unique_ptr<AlgebraicUpdateMethod>> MakeClearBars(
    const DrinkersSchema& s);

/// all_bars [D]: f := ρ_{Ba→f}(Ba) — frequent every bar. Order independent;
/// satisfies the Proposition 5.8 condition (it reads only the class
/// relation Ba, never Df).
Result<std::unique_ptr<AlgebraicUpdateMethod>> MakeAllBars(
    const DrinkersSchema& s);

// ---------------------------------------------------------------------------
// One class C with properties e, tc : C→C (Example 6.4).
// ---------------------------------------------------------------------------
struct TcSchema {
  Schema schema;
  ClassId c = 0;
  PropertyId e = 0, tc = 0;
};
Result<TcSchema> MakeTcSchema();

/// The Example 6.4 method [C, C]:
///   tc := π_e(self ⋈_{self=C} Ce)
///       ∪ π_e(self ⋈_{self=C} Ctc ⋈_{tc=C'} ρ_{C→C'}(Ce)).
/// Sequential application over C × C computes transitive closure in tc;
/// parallel application merely duplicates each e-edge as a tc-edge.
Result<std::unique_ptr<AlgebraicUpdateMethod>> MakeTransitiveClosureMethod(
    const TcSchema& s);

// ---------------------------------------------------------------------------
// One class C with properties a, b : C→C (Theorem 5.6 and Proposition 5.14).
// ---------------------------------------------------------------------------
struct PairSchema {
  Schema schema;
  ClassId c = 0;
  PropertyId a = 0, b = 0;
};
Result<PairSchema> MakePairSchema();

/// A nullary guard that is {()} iff the binary relation `relation` (with
/// attribute names `attr_x`, `attr_y`) holds at least `n` tuples, for
/// n ∈ {1, 2, 3}. Positive — implements the paper's "#Ca ≥ k" trick from the
/// proof of Proposition 5.14 by unioning over all ways two tuples can
/// differ.
Result<ExprPtr> GuardAtLeastTuples(const std::string& relation,
                                   const std::string& attr_x,
                                   const std::string& attr_y, int n);

/// Proposition 5.14's first method M [C, C] (positive):
///   a := if #Ca ≥ 2 then π_a(self ⋈_{self=C} Ca ⋈_{a≠arg1} arg1) else ∅.
Result<std::unique_ptr<AlgebraicUpdateMethod>> MakeConditionalDeleteMethod(
    const PairSchema& s);

/// Proposition 5.14's query Q := if #Ca ≥ 3 then Cb else ∅, with result
/// scheme (C, b) — a set of [C, C] receivers.
Result<ExprPtr> MakeProp514Query(const PairSchema& s);

/// Proposition 5.14's second method M [C, C, C] (positive):
///   a := π_b(self ⋈_{self=C} Cb);
///   b := π_b(self ⋈_{self=C} Cb) ∪ arg1.
Result<std::unique_ptr<AlgebraicUpdateMethod>> MakeCopyExtendMethod(
    const PairSchema& s);

/// The parity gadget (footnote 8) [C, C], non-positive: on receiver (x, y),
/// if x ≠ y and both are unmatched (no incident a-edge), set a(x) := {y};
/// otherwise keep a(x). Sequential application over C × C greedily builds a
/// maximal matching of the complete graph on C, so afterwards an unmatched
/// object exists iff |C| is odd — sequential application expresses parity,
/// which the relational algebra (hence parallel application) cannot.
Result<std::unique_ptr<AlgebraicUpdateMethod>> MakeParityMethod(
    const PairSchema& s);

// ---------------------------------------------------------------------------
// The Section 7 payroll schema: employees with Salary : Emp→Val and
// Manager : Emp→Emp; NewSal rows NS with Old, New : NS→Val; a Fire list
// Fire with Amt : Fire→Val. Val is the shared domain of amounts.
// ---------------------------------------------------------------------------
struct PayrollSchema {
  Schema schema;
  ClassId emp = 0, val = 0, ns = 0, fire = 0;
  PropertyId salary = 0, manager = 0, old_amt = 0, new_amt = 0, fire_amt = 0;
};
Result<PayrollSchema> MakePayrollSchema();

/// Section 7 statement (B') [Emp, Val]:
///   Salary := π_New(arg1 ⋈_{arg1=Old} NewSal)
/// where NewSal is the natural join of NSOld and NSNew. Applied to the key
/// set {[e, salary(e)]}, this is the cursor-based update (B); it satisfies
/// the Proposition 5.8 condition, hence is key-order independent.
Result<std::unique_ptr<AlgebraicUpdateMethod>> MakeSalaryFromNewSal(
    const PayrollSchema& s);

/// Section 7 statement (C') [Emp]:
///   Salary := π_New(self ⋈_{self=Emp} EmpManager ⋈_{Manager=Emp2}
///                   ρ(EmpSalary) ⋈_{Salary=Old} NewSal)
/// — give each employee the new salary of their *manager*. Order dependent
/// (it reads EmpSalary, which it also updates).
Result<std::unique_ptr<AlgebraicUpdateMethod>> MakeSalaryFromManagersNewSal(
    const PayrollSchema& s);

/// Evaluates a receiver-producing query over an instance: the expression
/// must produce a relation whose scheme matches `signature` positionally;
/// each tuple becomes a receiver. Used for query-order independence
/// (Definition 3.1(3), Proposition 5.14) and for the Section 7 set-oriented
/// semantics (compute the receiver set first, then update).
Result<std::vector<Receiver>> ReceiversFromQuery(const ExprPtr& query,
                                                 const Instance& instance,
                                                 const MethodSignature&
                                                     signature,
                                                 ExecContext& ctx =
                                                     ExecContext::Default());

}  // namespace setrec

#endif  // SETREC_ALGEBRAIC_METHOD_LIBRARY_H_
