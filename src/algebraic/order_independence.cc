#include "algebraic/order_independence.h"

#include <algorithm>
#include <map>

#include "conjunctive/containment.h"
#include "conjunctive/translate.h"
#include "algebraic/method_library.h"
#include "core/sequential.h"
#include "obs/json_escape.h"
#include "relational/builder.h"

namespace setrec {

namespace {

/// Renames the single output attribute of a unary expression to `name` when
/// necessary.
Result<ExprPtr> NormalizeUnaryAttr(const ExprPtr& expr, const Catalog& catalog,
                                   const std::string& name) {
  SETREC_ASSIGN_OR_RETURN(RelationScheme scheme, InferScheme(*expr, catalog));
  if (scheme.arity() != 1) {
    return Status::InvalidArgument("expected a unary expression");
  }
  if (scheme.attribute(0).name == name) return expr;
  return ra::Rename(expr, scheme.attribute(0).name, name);
}

/// Replaces the receiver relations self/argi in `expr` by their primed (or
/// unprimed) counterparts while preserving attribute names: self is replaced
/// by ρ_{self'→self}(self') so that selections over "self" keep working.
ExprPtr RetargetReceivers(const ExprPtr& expr, const MethodSignature& sig,
                          bool to_primed) {
  ExprPtr out = expr;
  for (std::size_t i = 0; i < sig.size(); ++i) {
    const std::string base =
        i == 0 ? std::string(kSelfRelation) : ArgRelationName(i - 1);
    const std::string primed = PrimedName(base);
    const std::string from = to_primed ? base : primed;
    const std::string to = to_primed ? primed : base;
    out = SubstituteRelation(out, from,
                             ra::Rename(ra::Rel(to), to, from));
  }
  return out;
}

/// π_{C,a}(σ_{C≠s}(E_prev × s)) ∪ ρ_{s→C}(s) × E_rhs — the contents of Ca
/// after one more application whose receiving object sits in the singleton
/// relation `s` and whose right-hand side is E_rhs (already normalized to
/// attribute a). `E_prev` holds Ca's previous contents, scheme {C, a}.
ExprPtr ApplyStep(const ExprPtr& e_prev, const std::string& self_rel,
                  const std::string& class_attr, const std::string& prop_attr,
                  const ExprPtr& e_rhs) {
  ExprPtr keep = ra::Project(
      ra::JoinNeq(e_prev, ra::Rel(self_rel), class_attr, self_rel),
      {class_attr, prop_attr});
  ExprPtr fresh =
      ra::Product(ra::Rename(ra::Rel(self_rel), self_rel, class_attr), e_rhs);
  return ra::Union(std::move(keep), std::move(fresh));
}

}  // namespace

Result<std::vector<ReductionExpressions>> BuildOrderIndependenceReduction(
    const AlgebraicUpdateMethod& method, OrderIndependenceKind kind) {
  const MethodContext& ctx = method.context();
  const Schema& schema = *ctx.schema;
  const MethodSignature& sig = ctx.signature;
  const std::string class_attr =
      schema.class_name(sig.receiving_class());
  const std::string self_p = PrimedName(kSelfRelation);

  // Per updated property a: its relation name Ca, attribute name, and the
  // normalized right-hand side E_a.
  struct PropertyInfo {
    PropertyId property;
    std::string relation;  // "Ca"
    std::string attr;      // "a"
    ExprPtr rhs;           // E_a, output attribute normalized to "a"
  };
  std::vector<PropertyInfo> props;
  for (const UpdateStatement& s : method.statements()) {
    PropertyInfo info;
    info.property = s.property;
    info.relation = PropertyRelationName(schema, s.property);
    info.attr = schema.property(s.property).name;
    SETREC_ASSIGN_OR_RETURN(
        info.rhs, NormalizeUnaryAttr(s.expression, ctx.catalog, info.attr));
    props.push_back(std::move(info));
  }

  // E_a[t]: Ca after applying the method at the unprimed receiver t, and
  // E_a[t']: after applying at the primed receiver t'.
  std::map<PropertyId, ExprPtr> after_t;
  std::map<PropertyId, ExprPtr> after_tp;
  for (const PropertyInfo& p : props) {
    after_t[p.property] =
        ApplyStep(ra::Rel(p.relation), kSelfRelation, class_attr, p.attr,
                  p.rhs);
    ExprPtr rhs_primed = RetargetReceivers(p.rhs, sig, /*to_primed=*/true);
    after_tp[p.property] =
        ApplyStep(ra::Rel(p.relation), self_p, class_attr, p.attr,
                  std::move(rhs_primed));
  }

  // The validity guard (proof of Theorem 5.6): all receiver relations
  // non-empty, and the two receivers distinct. For key-order independence
  // only the receiving objects must differ (the argument-difference terms
  // are omitted, see the proof of Theorem 5.12).
  std::vector<ExprPtr> singleton_rels;
  for (std::size_t i = 0; i < sig.size(); ++i) {
    const std::string base =
        i == 0 ? std::string(kSelfRelation) : ArgRelationName(i - 1);
    singleton_rels.push_back(ra::Rel(base));
    singleton_rels.push_back(ra::Rel(PrimedName(base)));
  }
  ExprPtr nonempty = ra::Guard(ra::ProductAll(std::move(singleton_rels)));

  std::vector<ExprPtr> differ_terms;
  differ_terms.push_back(ra::Guard(ra::JoinNeq(
      ra::Rel(kSelfRelation), ra::Rel(self_p), kSelfRelation, self_p)));
  if (kind == OrderIndependenceKind::kAbsolute) {
    for (std::size_t i = 0; i < sig.num_args(); ++i) {
      const std::string base = ArgRelationName(i);
      const std::string primed = PrimedName(base);
      differ_terms.push_back(
          ra::Guard(ra::JoinNeq(ra::Rel(base), ra::Rel(primed), base, primed)));
    }
  }
  ExprPtr guard =
      ra::Product(std::move(nonempty), ra::UnionAll(std::move(differ_terms)));

  // Compose the second application on top of the first, in both orders.
  std::vector<ReductionExpressions> out;
  for (const PropertyInfo& p : props) {
    // Order t then t': the second application reads the updated relations
    // Cb = E_b[t] and uses the primed receiver.
    ExprPtr rhs2 = RetargetReceivers(p.rhs, sig, /*to_primed=*/true);
    for (const PropertyInfo& q : props) {
      rhs2 = SubstituteRelation(rhs2, q.relation, after_t.at(q.property));
    }
    SETREC_ASSIGN_OR_RETURN(
        rhs2, NormalizeUnaryAttr(rhs2, ctx.reduction_catalog, p.attr));
    ExprPtr e_tt = ApplyStep(after_t.at(p.property), self_p, class_attr,
                             p.attr, std::move(rhs2));

    // Order t' then t: symmetric.
    ExprPtr rhs3 = p.rhs;  // unprimed receiver
    for (const PropertyInfo& q : props) {
      rhs3 = SubstituteRelation(rhs3, q.relation, after_tp.at(q.property));
    }
    SETREC_ASSIGN_OR_RETURN(
        rhs3, NormalizeUnaryAttr(rhs3, ctx.reduction_catalog, p.attr));
    ExprPtr e_ts = ApplyStep(after_tp.at(p.property), kSelfRelation,
                             class_attr, p.attr, std::move(rhs3));

    out.push_back(ReductionExpressions{
        p.property, ra::Product(std::move(e_tt), guard),
        ra::Product(std::move(e_ts), guard)});
  }
  return out;
}

Result<bool> DecideOrderIndependence(const AlgebraicUpdateMethod& method,
                                     OrderIndependenceKind kind,
                                     ExecContext& ctx) {
  if (!method.IsPositiveMethod()) {
    return Status::InvalidArgument(
        "order independence is only decidable for positive methods "
        "(Theorem 5.12 / Corollary 5.7); use SearchOrderDependenceWitness");
  }
  TraceSpan span = StartSpan(ctx, "decide/order-independence");
  SETREC_ASSIGN_OR_RETURN(std::vector<ReductionExpressions> reductions,
                          BuildOrderIndependenceReduction(method, kind));
  const MethodContext& mctx = method.context();
  for (const ReductionExpressions& r : reductions) {
    SETREC_RETURN_IF_ERROR(ctx.CheckPoint("decision/property"));
    SETREC_ASSIGN_OR_RETURN(
        PositiveQuery q1,
        TranslateToPositiveQuery(r.e_tt, mctx.reduction_catalog));
    SETREC_ASSIGN_OR_RETURN(
        PositiveQuery q2,
        TranslateToPositiveQuery(r.e_ts, mctx.reduction_catalog));
    SETREC_ASSIGN_OR_RETURN(
        bool equivalent,
        EquivalentUnder(q1, q2, mctx.reduction_deps, mctx.reduction_catalog,
                        ctx));
    if (!equivalent) return false;
  }
  return true;
}

Result<OrderIndependenceVerdict> DecideOrderIndependenceBounded(
    const AlgebraicUpdateMethod& method, OrderIndependenceKind kind,
    ExecContext& ctx) {
  Result<bool> decided = DecideOrderIndependence(method, kind, ctx);
  if (decided.ok()) {
    return *decided ? OrderIndependenceVerdict::kIndependent
                    : OrderIndependenceVerdict::kDependent;
  }
  if (decided.status().IsRetryable()) {
    return OrderIndependenceVerdict::kUnknown;
  }
  return decided.status();
}

Result<DecisionReport> DecideOrderIndependenceDetailed(
    const AlgebraicUpdateMethod& method, OrderIndependenceKind kind,
    ExecContext& ctx) {
  if (!method.IsPositiveMethod()) {
    return Status::InvalidArgument(
        "order independence is only decidable for positive methods "
        "(Theorem 5.12 / Corollary 5.7)");
  }
  TraceSpan span = StartSpan(ctx, "decide/order-independence");
  SETREC_ASSIGN_OR_RETURN(std::vector<ReductionExpressions> reductions,
                          BuildOrderIndependenceReduction(method, kind));
  const MethodContext& mctx = method.context();
  DecisionReport report;
  report.order_independent = true;
  for (const ReductionExpressions& r : reductions) {
    SETREC_RETURN_IF_ERROR(ctx.CheckPoint("decision/property"));
    SETREC_ASSIGN_OR_RETURN(
        PositiveQuery q1,
        TranslateToPositiveQuery(r.e_tt, mctx.reduction_catalog));
    SETREC_ASSIGN_OR_RETURN(
        PositiveQuery q2,
        TranslateToPositiveQuery(r.e_ts, mctx.reduction_catalog));
    DecisionReport::PropertyDetail detail;
    detail.property = r.property;
    detail.raw_disjuncts_tt = q1.disjuncts.size();
    detail.raw_disjuncts_ts = q2.disjuncts.size();
    PositiveQuery p1 = SimplifyPositiveQuery(std::move(q1), ctx);
    PositiveQuery p2 = SimplifyPositiveQuery(std::move(q2), ctx);
    detail.pruned_disjuncts_tt = p1.disjuncts.size();
    detail.pruned_disjuncts_ts = p2.disjuncts.size();
    SETREC_ASSIGN_OR_RETURN(
        detail.equivalent,
        EquivalentUnder(p1, p2, mctx.reduction_deps, mctx.reduction_catalog,
                        ctx));
    if (!detail.equivalent) report.order_independent = false;
    report.properties.push_back(detail);
  }
  return report;
}

Result<bool> DecideOrderIndependence(const AlgebraicUpdateMethod& method,
                                     OrderIndependenceKind kind,
                                     const ExecOptions& options) {
  ExecScope scope(options);
  return DecideOrderIndependence(method, kind, scope.ctx());
}

Result<OrderIndependenceVerdict> DecideOrderIndependenceBounded(
    const AlgebraicUpdateMethod& method, OrderIndependenceKind kind,
    const ExecOptions& options) {
  ExecScope scope(options);
  return DecideOrderIndependenceBounded(method, kind, scope.ctx());
}

Result<DecisionReport> DecideOrderIndependenceDetailed(
    const AlgebraicUpdateMethod& method, OrderIndependenceKind kind,
    const ExecOptions& options) {
  ExecScope scope(options);
  return DecideOrderIndependenceDetailed(method, kind, scope.ctx());
}

namespace {

std::string RenderObject(ObjectId o) {
  return "c" + std::to_string(o.class_id()) + "#" + std::to_string(o.index());
}

std::string RenderTuple(const Tuple& t) {
  std::string out = "(";
  for (std::size_t i = 0; i < t.arity(); ++i) {
    if (i > 0) out += ", ";
    out += RenderObject(t.at(i));
  }
  return out + ")";
}

/// Deterministic rendering of a refuting chase result: the witness tuple
/// the left query produces, and the canonical database it produces it on
/// (relations and tuples in sorted order).
std::string RenderCounterexample(const ContainmentResult& result) {
  std::string out;
  if (result.counterexample_tuple.has_value()) {
    out += "witness " + RenderTuple(*result.counterexample_tuple) +
           " produced by the left query only; canonical database:\n";
  }
  if (result.counterexample.has_value()) {
    for (const std::string& name : result.counterexample->Names()) {
      Result<const Relation*> rel = result.counterexample->Find(name);
      if (!rel.ok() || (*rel)->empty()) continue;
      out += "  " + name + " = {";
      bool first = true;
      for (const Tuple* t : (*rel)->SortedTuples()) {
        if (!first) out += ", ";
        first = false;
        out += RenderTuple(*t);
      }
      out += "}\n";
    }
  }
  return out;
}

}  // namespace

Result<DecisionCertificate> DecideOrderIndependenceCertified(
    const AlgebraicUpdateMethod& method, OrderIndependenceKind kind,
    const ExecOptions& options) {
  if (!method.IsPositiveMethod()) {
    return Status::InvalidArgument(
        "order independence is only decidable for positive methods "
        "(Theorem 5.12 / Corollary 5.7)");
  }
  // Per-test counter deltas need a registry; fall back to a private one so
  // certificates are populated even for unobserved callers.
  MetricsRegistry local_metrics;
  ExecOptions opts = options;
  if (opts.metrics == nullptr) opts.metrics = &local_metrics;
  ExecScope scope(opts);
  ExecContext& ctx = scope.ctx();
  MetricsRegistry& metrics = *ctx.metrics();

  TraceSpan span = StartSpan(ctx, "decide/order-independence");
  SETREC_ASSIGN_OR_RETURN(std::vector<ReductionExpressions> reductions,
                          BuildOrderIndependenceReduction(method, kind));
  const MethodContext& mctx = method.context();

  DecisionCertificate certificate;
  certificate.kind = kind;
  certificate.method_name = method.name();
  certificate.order_independent = true;
  certificate.report.order_independent = true;
  for (const ReductionExpressions& r : reductions) {
    SETREC_RETURN_IF_ERROR(ctx.CheckPoint("decision/property"));
    SETREC_ASSIGN_OR_RETURN(
        PositiveQuery q1,
        TranslateToPositiveQuery(r.e_tt, mctx.reduction_catalog));
    SETREC_ASSIGN_OR_RETURN(
        PositiveQuery q2,
        TranslateToPositiveQuery(r.e_ts, mctx.reduction_catalog));
    DecisionReport::PropertyDetail detail;
    detail.property = r.property;
    detail.raw_disjuncts_tt = q1.disjuncts.size();
    detail.raw_disjuncts_ts = q2.disjuncts.size();
    PositiveQuery p1 = SimplifyPositiveQuery(std::move(q1), ctx);
    PositiveQuery p2 = SimplifyPositiveQuery(std::move(q2), ctx);
    detail.pruned_disjuncts_tt = p1.disjuncts.size();
    detail.pruned_disjuncts_ts = p2.disjuncts.size();
    detail.equivalent = true;

    struct Direction {
      const char* label;
      const PositiveQuery* from;
      const PositiveQuery* to;
    };
    for (const Direction& d :
         {Direction{"tt⊆ts", &p1, &p2}, Direction{"ts⊆tt", &p2, &p1}}) {
      ContainmentCertificate test;
      test.property = r.property;
      test.property_name = mctx.schema->property(r.property).name;
      test.direction = d.label;
      const std::uint64_t steps0 = ctx.steps();
      const std::uint64_t tests0 = metrics.engine.containment_tests.value();
      const std::uint64_t rounds0 = metrics.engine.chase_rounds.value();
      const std::uint64_t cands0 = metrics.engine.hom_candidates.value();
      SETREC_ASSIGN_OR_RETURN(
          ContainmentResult result,
          CheckContainment(*d.from, *d.to, mctx.reduction_deps,
                           mctx.reduction_catalog, /*simplify=*/false, ctx));
      test.steps = ctx.steps() - steps0;
      test.containment_tests =
          metrics.engine.containment_tests.value() - tests0;
      test.chase_rounds = metrics.engine.chase_rounds.value() - rounds0;
      test.hom_candidates = metrics.engine.hom_candidates.value() - cands0;
      test.contained = result.contained;
      if (!result.contained) {
        test.counterexample = RenderCounterexample(result);
        detail.equivalent = false;
      }
      certificate.tests.push_back(std::move(test));
    }
    if (!detail.equivalent) {
      certificate.order_independent = false;
      certificate.report.order_independent = false;
    }
    certificate.report.properties.push_back(detail);
  }
  return certificate;
}

void WriteCertificateJsonl(const DecisionCertificate& certificate,
                           std::ostream& out) {
  out << "{\"type\":\"decision-certificate\",\"method\":"
      << JsonQuoted(certificate.method_name) << ",\"kind\":"
      << JsonQuoted(certificate.kind == OrderIndependenceKind::kAbsolute
                        ? "absolute"
                        : "key-order")
      << ",\"order_independent\":"
      << (certificate.order_independent ? "true" : "false")
      << ",\"properties\":" << certificate.report.properties.size()
      << ",\"tests\":" << certificate.tests.size() << "}\n";
  for (const ContainmentCertificate& t : certificate.tests) {
    out << "{\"type\":\"containment-test\",\"property\":" << t.property
        << ",\"property_name\":" << JsonQuoted(t.property_name)
        << ",\"direction\":" << JsonQuoted(t.direction) << ",\"contained\":"
        << (t.contained ? "true" : "false") << ",\"steps\":" << t.steps
        << ",\"containment_tests\":" << t.containment_tests
        << ",\"chase_rounds\":" << t.chase_rounds << ",\"hom_candidates\":"
        << t.hom_candidates << ",\"counterexample\":"
        << JsonQuoted(t.counterexample) << "}\n";
  }
}

std::string CertificateToText(const DecisionCertificate& certificate) {
  std::string out = "decision certificate: " +
                    (certificate.method_name.empty()
                         ? std::string("(unnamed method)")
                         : certificate.method_name) +
                    ", " +
                    (certificate.kind == OrderIndependenceKind::kAbsolute
                         ? "absolute"
                         : "key-order") +
                    " order independence\n";
  out += std::string("verdict: ") +
         (certificate.order_independent ? "ORDER INDEPENDENT"
                                        : "NOT ORDER INDEPENDENT") +
         "\n";
  for (const DecisionReport::PropertyDetail& p :
       certificate.report.properties) {
    out += "property " + std::to_string(p.property) + ": tt " +
           std::to_string(p.raw_disjuncts_tt) + "→" +
           std::to_string(p.pruned_disjuncts_tt) + " disjuncts, ts " +
           std::to_string(p.raw_disjuncts_ts) + "→" +
           std::to_string(p.pruned_disjuncts_ts) + " disjuncts\n";
    for (const ContainmentCertificate& t : certificate.tests) {
      if (t.property != p.property) continue;
      out += "  " + t.direction + ": " +
             (t.contained ? "contained" : "REFUTED") +
             " (steps=" + std::to_string(t.steps) +
             ", containment_tests=" + std::to_string(t.containment_tests) +
             ", chase_rounds=" + std::to_string(t.chase_rounds) +
             ", hom_candidates=" + std::to_string(t.hom_candidates) + ")\n";
      if (!t.counterexample.empty()) {
        out += "    " + t.counterexample;
      }
    }
  }
  return out;
}

bool SatisfiesUpdateIsolationCondition(const AlgebraicUpdateMethod& method) {
  const Schema& schema = *method.context().schema;
  std::vector<std::string> updated;
  for (const UpdateStatement& s : method.statements()) {
    updated.push_back(PropertyRelationName(schema, s.property));
  }
  std::sort(updated.begin(), updated.end());
  for (const UpdateStatement& s : method.statements()) {
    for (const std::string& rel : ReferencedRelations(*s.expression)) {
      if (std::binary_search(updated.begin(), updated.end(), rel)) {
        return false;
      }
    }
  }
  return true;
}

Result<std::optional<OrderDependenceWitness>> SearchOrderDependenceWitness(
    const UpdateMethod& method, const Schema& schema, std::uint64_t seed,
    int trials, const InstanceGenerator::Options& options,
    bool key_pairs_only, ExecContext& ctx) {
  InstanceGenerator gen(&schema, seed);
  for (int trial = 0; trial < trials; ++trial) {
    SETREC_RETURN_IF_ERROR(ctx.CheckPoint("witness-search/trial"));
    Instance instance = gen.RandomInstance(options);
    std::vector<Receiver> receivers =
        InstanceGenerator::AllReceivers(instance, method.signature());
    for (std::size_t i = 0; i < receivers.size(); ++i) {
      for (std::size_t j = i + 1; j < receivers.size(); ++j) {
        if (key_pairs_only && receivers[i].receiving_object() ==
                                  receivers[j].receiving_object()) {
          continue;
        }
        std::vector<Receiver> pair = {receivers[i], receivers[j]};
        SETREC_ASSIGN_OR_RETURN(
            OrderIndependenceOutcome outcome,
            PairwiseOrderIndependentOn(method, instance, pair, ctx));
        if (!outcome.order_independent) {
          return std::optional<OrderDependenceWitness>(OrderDependenceWitness{
              std::move(instance), receivers[i], receivers[j]});
        }
      }
    }
  }
  return std::optional<OrderDependenceWitness>();
}

Result<std::optional<QueryOrderDependenceWitness>>
SearchQueryOrderDependenceWitness(const UpdateMethod& method,
                                  const ExprPtr& query, const Schema& schema,
                                  std::uint64_t seed, int trials,
                                  const InstanceGenerator::Options& options,
                                  std::size_t max_set_size, ExecContext& ctx) {
  InstanceGenerator gen(&schema, seed);
  for (int trial = 0; trial < trials; ++trial) {
    SETREC_RETURN_IF_ERROR(ctx.CheckPoint("witness-search/query-trial"));
    Instance instance = gen.RandomInstance(options);
    SETREC_ASSIGN_OR_RETURN(
        std::vector<Receiver> receivers,
        ReceiversFromQuery(query, instance, method.signature(), ctx));
    // Q(I) receivers are tuples of objects drawn from the instance, so
    // they are valid over it; skip oversized sets (the exhaustive test is
    // |T|!).
    if (receivers.size() > max_set_size) continue;
    SETREC_ASSIGN_OR_RETURN(
        OrderIndependenceOutcome outcome,
        OrderIndependentOn(method, instance, receivers, ctx, max_set_size));
    if (!outcome.order_independent) {
      return std::optional<QueryOrderDependenceWitness>(
          QueryOrderDependenceWitness{std::move(instance),
                                      std::move(outcome)});
    }
  }
  return std::optional<QueryOrderDependenceWitness>();
}

}  // namespace setrec
