#include "algebraic/algebraic_method.h"

#include <set>
#include <sstream>

#include "relational/evaluator.h"

namespace setrec {

AlgebraicUpdateMethod::AlgebraicUpdateMethod(
    MethodContext context, std::string name,
    std::vector<UpdateStatement> statements)
    : UpdateMethod(context.signature, std::move(name)),
      context_(std::move(context)),
      statements_(std::move(statements)) {}

Result<std::unique_ptr<AlgebraicUpdateMethod>> AlgebraicUpdateMethod::Make(
    const Schema* schema, MethodSignature signature, std::string name,
    std::vector<UpdateStatement> statements) {
  SETREC_ASSIGN_OR_RETURN(MethodContext context,
                          BuildMethodContext(schema, signature));
  std::set<PropertyId> seen;
  for (const UpdateStatement& s : statements) {
    if (!seen.insert(s.property).second) {
      return Status::InvalidArgument(
          "at most one update per property (Definition 5.4(4)): " +
          schema->property(s.property).name);
    }
    SETREC_RETURN_IF_ERROR(
        ValidateUpdateExpression(context, s.property, s.expression));
  }
  return std::unique_ptr<AlgebraicUpdateMethod>(new AlgebraicUpdateMethod(
      std::move(context), std::move(name), std::move(statements)));
}

Result<Instance> AlgebraicUpdateMethod::Apply(const Instance& instance,
                                              const Receiver& receiver) const {
  SETREC_RETURN_IF_ERROR(CheckReceiver(instance, receiver));
  SETREC_ASSIGN_OR_RETURN(Database db, EncodeInstance(instance));
  SETREC_RETURN_IF_ERROR(
      InstallReceiverRelations(db, context_, receiver, /*primed=*/false));

  // Evaluate every right-hand side against the *pre-update* instance first
  // (all statements of one method application see the same snapshot), then
  // splice the results in.
  Evaluator evaluator(&db);
  std::vector<Relation> results;
  results.reserve(statements_.size());
  for (const UpdateStatement& s : statements_) {
    SETREC_ASSIGN_OR_RETURN(Relation r, evaluator.Eval(s.expression));
    results.push_back(std::move(r));
  }

  Instance out = instance;
  const ObjectId receiving = receiver.receiving_object();
  for (std::size_t i = 0; i < statements_.size(); ++i) {
    SETREC_RETURN_IF_ERROR(
        out.ClearEdgesFrom(receiving, statements_[i].property));
    for (const Tuple& t : results[i]) {
      // Typing guarantees E(I,t) ⊆ B(I) (see ValidateUpdateExpression), so
      // AddEdge cannot fail on a missing endpoint.
      SETREC_RETURN_IF_ERROR(
          out.AddEdge(receiving, statements_[i].property, t.at(0)));
    }
  }
  return out;
}

bool AlgebraicUpdateMethod::IsPositiveMethod() const {
  for (const UpdateStatement& s : statements_) {
    if (!IsPositive(*s.expression)) return false;
  }
  return true;
}

std::vector<PropertyId> AlgebraicUpdateMethod::UpdatedProperties() const {
  std::vector<PropertyId> out;
  out.reserve(statements_.size());
  for (const UpdateStatement& s : statements_) out.push_back(s.property);
  return out;
}

std::string AlgebraicUpdateMethod::ToString() const {
  std::ostringstream out;
  out << (name().empty() ? "<anonymous>" : name()) << "[";
  for (std::size_t i = 0; i < signature().size(); ++i) {
    if (i > 0) out << ", ";
    out << context_.schema->class_name(signature().class_at(i));
  }
  out << "] {";
  for (const UpdateStatement& s : statements_) {
    out << " " << context_.schema->property(s.property).name << " := "
        << ExprToString(*s.expression) << ";";
  }
  out << " }";
  return out.str();
}

}  // namespace setrec
