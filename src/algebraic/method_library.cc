#include "algebraic/method_library.h"

#include <array>

#include "relational/builder.h"
#include "relational/evaluator.h"

namespace setrec {

namespace {
using ra::Diff;
using ra::Guard;
using ra::JoinEq;
using ra::JoinNeq;
using ra::Product;
using ra::Project;
using ra::Rel;
using ra::Rename;
using ra::SelectEq;
using ra::SelectNeq;
using ra::Union;
using ra::UnionAll;
}  // namespace

Result<DrinkersSchema> MakeDrinkersSchema() {
  DrinkersSchema s;
  SETREC_ASSIGN_OR_RETURN(s.drinker, s.schema.AddClass("D"));
  SETREC_ASSIGN_OR_RETURN(s.bar, s.schema.AddClass("Ba"));
  SETREC_ASSIGN_OR_RETURN(s.beer, s.schema.AddClass("Be"));
  SETREC_ASSIGN_OR_RETURN(s.frequents,
                          s.schema.AddProperty("f", s.drinker, s.bar));
  SETREC_ASSIGN_OR_RETURN(s.likes, s.schema.AddProperty("l", s.drinker, s.beer));
  SETREC_ASSIGN_OR_RETURN(s.serves, s.schema.AddProperty("s", s.bar, s.beer));
  return s;
}

Result<std::unique_ptr<AlgebraicUpdateMethod>> MakeAddBar(
    const DrinkersSchema& s) {
  // f := π_f(self ⋈_{self=D} Df) ∪ arg1 (Example 5.5).
  ExprPtr e = Union(Project(JoinEq(Rel("self"), Rel("Df"), "self", "D"), {"f"}),
                    Rename(Rel("arg1"), "arg1", "f"));
  return AlgebraicUpdateMethod::Make(
      &s.schema, MethodSignature({s.drinker, s.bar}), "add_bar",
      {UpdateStatement{s.frequents, std::move(e)}});
}

Result<std::unique_ptr<AlgebraicUpdateMethod>> MakeFavoriteBar(
    const DrinkersSchema& s) {
  // f := arg1 (Example 5.5).
  return AlgebraicUpdateMethod::Make(
      &s.schema, MethodSignature({s.drinker, s.bar}), "favorite_bar",
      {UpdateStatement{s.frequents, Rel("arg1")}});
}

Result<std::unique_ptr<AlgebraicUpdateMethod>> MakeDeleteBar(
    const DrinkersSchema& s) {
  // f := π_f(self ⋈_{self=D} Df ⋈_{f≠arg1} arg1) (Example 5.11).
  ExprPtr e = Project(
      SelectNeq(Product(JoinEq(Rel("self"), Rel("Df"), "self", "D"),
                        Rel("arg1")),
                "f", "arg1"),
      {"f"});
  return AlgebraicUpdateMethod::Make(
      &s.schema, MethodSignature({s.drinker, s.bar}), "delete_bar",
      {UpdateStatement{s.frequents, std::move(e)}});
}

Result<std::unique_ptr<AlgebraicUpdateMethod>> MakeLikesServesBar(
    const DrinkersSchema& s) {
  // f := π_f(self ⋈_{self=D} Df)
  //    ∪ ρ_{Ba→f}(π_Ba(self ⋈_{self=D} Dl ⋈_{l=s} Bas)) (Examples 4.15/5.5).
  ExprPtr keep = Project(JoinEq(Rel("self"), Rel("Df"), "self", "D"), {"f"});
  ExprPtr serving = Rename(
      Project(JoinEq(JoinEq(Rel("self"), Rel("Dl"), "self", "D"), Rel("Bas"),
                     "l", "s"),
              {"Ba"}),
      "Ba", "f");
  return AlgebraicUpdateMethod::Make(
      &s.schema, MethodSignature({s.drinker}), "likes_serves_bar",
      {UpdateStatement{s.frequents, Union(std::move(keep), std::move(serving))}});
}

Result<std::unique_ptr<AlgebraicUpdateMethod>> MakeClearBars(
    const DrinkersSchema& s) {
  // f := π_f(σ_{f≠f}(Df)): the selection is unsatisfiable, so the value is
  // always ∅ — the constant-free way to write a clearing assignment.
  return AlgebraicUpdateMethod::Make(
      &s.schema, MethodSignature({s.drinker}), "clear_bars",
      {UpdateStatement{s.frequents,
                       Project(SelectNeq(Rel("Df"), "f", "f"), {"f"})}});
}

Result<std::unique_ptr<AlgebraicUpdateMethod>> MakeAllBars(
    const DrinkersSchema& s) {
  return AlgebraicUpdateMethod::Make(
      &s.schema, MethodSignature({s.drinker}), "all_bars",
      {UpdateStatement{s.frequents, Rename(Rel("Ba"), "Ba", "f")}});
}

Result<TcSchema> MakeTcSchema() {
  TcSchema s;
  SETREC_ASSIGN_OR_RETURN(s.c, s.schema.AddClass("C"));
  SETREC_ASSIGN_OR_RETURN(s.e, s.schema.AddProperty("e", s.c, s.c));
  SETREC_ASSIGN_OR_RETURN(s.tc, s.schema.AddProperty("tc", s.c, s.c));
  return s;
}

Result<std::unique_ptr<AlgebraicUpdateMethod>> MakeTransitiveClosureMethod(
    const TcSchema& s) {
  // tc := π_e(self ⋈_{self=C} Ce)
  //     ∪ π_e(self ⋈_{self=C} Ctc ⋈_{tc=C2} ρ_{C→C2}(Ce)) (Example 6.4).
  ExprPtr direct =
      Rename(Project(JoinEq(Rel("self"), Rel("Ce"), "self", "C"), {"e"}), "e",
             "tc");
  ExprPtr via = Rename(
      Project(JoinEq(JoinEq(Rel("self"), Rel("Ctc"), "self", "C"),
                     Rename(Rename(Rel("Ce"), "C", "C2"), "e", "e2"), "tc",
                     "C2"),
              {"e2"}),
      "e2", "tc");
  return AlgebraicUpdateMethod::Make(
      &s.schema, MethodSignature({s.c, s.c}), "tc_step",
      {UpdateStatement{s.tc, Union(std::move(direct), std::move(via))}});
}

Result<PairSchema> MakePairSchema() {
  PairSchema s;
  SETREC_ASSIGN_OR_RETURN(s.c, s.schema.AddClass("C"));
  SETREC_ASSIGN_OR_RETURN(s.a, s.schema.AddProperty("a", s.c, s.c));
  SETREC_ASSIGN_OR_RETURN(s.b, s.schema.AddProperty("b", s.c, s.c));
  return s;
}

Result<ExprPtr> GuardAtLeastTuples(const std::string& relation,
                                   const std::string& attr_x,
                                   const std::string& attr_y, int n) {
  if (n < 1 || n > 3) {
    return Status::InvalidArgument("GuardAtLeastTuples supports n in [1,3]");
  }
  if (n == 1) return Guard(Rel(relation));
  // Copies R, ρ(R), (ρρ(R)) with suffixed attribute names; two tuples differ
  // when they differ on x or on y, so the distinctness of each pair is a
  // union over the choice of differing attribute.
  auto copy = [&](int k) -> ExprPtr {
    if (k == 0) return Rel(relation);
    const std::string suffix = std::to_string(k + 1);
    return Rename(Rename(Rel(relation), attr_x, attr_x + suffix), attr_y,
                  attr_y + suffix);
  };
  auto attr = [&](const std::string& base, int k) {
    return k == 0 ? base : base + std::to_string(k + 1);
  };
  std::vector<std::pair<int, int>> pairs;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) pairs.emplace_back(i, j);
  }
  std::vector<ExprPtr> copies;
  for (int k = 0; k < n; ++k) copies.push_back(copy(k));
  ExprPtr base = ra::ProductAll(copies);
  // For each assignment of a differing attribute to each pair, one selection
  // chain; the guard is the union over all assignments.
  std::vector<ExprPtr> guards;
  const int combos = 1 << pairs.size();
  for (int mask = 0; mask < combos; ++mask) {
    ExprPtr e = base;
    for (std::size_t p = 0; p < pairs.size(); ++p) {
      const std::string& which = (mask >> p) & 1 ? attr_y : attr_x;
      e = SelectNeq(std::move(e), attr(which, pairs[p].first),
                    attr(which, pairs[p].second));
    }
    guards.push_back(Guard(std::move(e)));
  }
  return UnionAll(std::move(guards));
}

Result<std::unique_ptr<AlgebraicUpdateMethod>> MakeConditionalDeleteMethod(
    const PairSchema& s) {
  // a := (if #Ca ≥ 2) · π_a(self ⋈_{self=C} Ca ⋈_{a≠arg1} arg1)
  // (Proposition 5.14, first counterexample; positive).
  SETREC_ASSIGN_OR_RETURN(ExprPtr ge2, GuardAtLeastTuples("Ca", "C", "a", 2));
  ExprPtr core = Project(
      SelectNeq(Product(JoinEq(Rel("self"), Rel("Ca"), "self", "C"),
                        Rel("arg1")),
                "a", "arg1"),
      {"a"});
  return AlgebraicUpdateMethod::Make(
      &s.schema, MethodSignature({s.c, s.c}), "conditional_delete",
      {UpdateStatement{s.a, Product(std::move(core), std::move(ge2))}});
}

Result<ExprPtr> MakeProp514Query(const PairSchema& s) {
  (void)s;
  SETREC_ASSIGN_OR_RETURN(ExprPtr ge3, GuardAtLeastTuples("Ca", "C", "a", 3));
  return Product(Rel("Cb"), std::move(ge3));
}

Result<std::unique_ptr<AlgebraicUpdateMethod>> MakeCopyExtendMethod(
    const PairSchema& s) {
  // a := π_b(self ⋈_{self=C} Cb);
  // b := π_b(self ⋈_{self=C} Cb) ∪ arg1 (Proposition 5.14, second
  // counterexample; arg2 is deliberately unused).
  ExprPtr own_b = Project(JoinEq(Rel("self"), Rel("Cb"), "self", "C"), {"b"});
  ExprPtr to_a = Rename(own_b, "b", "a");
  ExprPtr to_b = Union(own_b, Rename(Rel("arg1"), "arg1", "b"));
  return AlgebraicUpdateMethod::Make(
      &s.schema, MethodSignature({s.c, s.c, s.c}), "copy_extend",
      {UpdateStatement{s.a, std::move(to_a)},
       UpdateStatement{s.b, std::move(to_b)}});
}

Result<std::unique_ptr<AlgebraicUpdateMethod>> MakeParityMethod(
    const PairSchema& s) {
  // Unmatched objects: U = (C − π_C(Ca)) − ρ_{a→C}(π_a(Ca)).
  ExprPtr unmatched = Diff(Diff(Rel("C"), Project(Rel("Ca"), {"C"})),
                           Rename(Project(Rel("Ca"), {"a"}), "a", "C"));
  ExprPtr self_u = Guard(SelectEq(Product(Rel("self"), unmatched), "self", "C"));
  ExprPtr arg_u = Guard(SelectEq(Product(Rel("arg1"), unmatched), "arg1", "C"));
  ExprPtr differ =
      Guard(SelectNeq(Product(Rel("self"), Rel("arg1")), "self", "arg1"));
  ExprPtr cond = Product(Product(self_u, arg_u), differ);
  ExprPtr not_cond = Diff(Guard(Rel("self")), cond);
  ExprPtr keep = Project(JoinEq(Rel("self"), Rel("Ca"), "self", "C"), {"a"});
  ExprPtr e = Union(Product(Rename(Rel("arg1"), "arg1", "a"), cond),
                    Product(std::move(keep), std::move(not_cond)));
  return AlgebraicUpdateMethod::Make(
      &s.schema, MethodSignature({s.c, s.c}), "parity_match",
      {UpdateStatement{s.a, std::move(e)}});
}

Result<PayrollSchema> MakePayrollSchema() {
  PayrollSchema s;
  SETREC_ASSIGN_OR_RETURN(s.emp, s.schema.AddClass("Emp"));
  SETREC_ASSIGN_OR_RETURN(s.val, s.schema.AddClass("Val"));
  SETREC_ASSIGN_OR_RETURN(s.ns, s.schema.AddClass("NS"));
  SETREC_ASSIGN_OR_RETURN(s.fire, s.schema.AddClass("Fire"));
  SETREC_ASSIGN_OR_RETURN(s.salary, s.schema.AddProperty("Salary", s.emp, s.val));
  SETREC_ASSIGN_OR_RETURN(s.manager,
                          s.schema.AddProperty("Manager", s.emp, s.emp));
  SETREC_ASSIGN_OR_RETURN(s.old_amt, s.schema.AddProperty("Old", s.ns, s.val));
  SETREC_ASSIGN_OR_RETURN(s.new_amt, s.schema.AddProperty("New", s.ns, s.val));
  SETREC_ASSIGN_OR_RETURN(s.fire_amt,
                          s.schema.AddProperty("Amt", s.fire, s.val));
  return s;
}

namespace {
/// NewSal as the natural join of NSOld(NS, Old) and NSNew(NS, New),
/// projected to (Old, New).
ExprPtr NewSalJoin() {
  return Project(JoinEq(Rel("NSOld"), Rename(Rel("NSNew"), "NS", "NS2"), "NS",
                        "NS2"),
                 {"Old", "New"});
}
}  // namespace

Result<std::unique_ptr<AlgebraicUpdateMethod>> MakeSalaryFromNewSal(
    const PayrollSchema& s) {
  // (B'): Salary := π_New(arg1 ⋈_{arg1=Old} NewSal).
  ExprPtr e =
      Project(JoinEq(Rel("arg1"), NewSalJoin(), "arg1", "Old"), {"New"});
  return AlgebraicUpdateMethod::Make(
      &s.schema, MethodSignature({s.emp, s.val}), "set_salary",
      {UpdateStatement{s.salary, std::move(e)}});
}

Result<std::unique_ptr<AlgebraicUpdateMethod>> MakeSalaryFromManagersNewSal(
    const PayrollSchema& s) {
  // (C'): Salary := π_New(self ⋈_{self=Emp} EmpManager ⋈_{Manager=Emp2}
  //                 ρ_{Emp→Emp2,Salary→Sal2}(EmpSalary) ⋈_{Sal2=Old} NewSal).
  ExprPtr mgr = JoinEq(Rel("self"), Rel("EmpManager"), "self", "Emp");
  ExprPtr mgr_sal =
      JoinEq(std::move(mgr),
             Rename(Rename(Rel("EmpSalary"), "Emp", "Emp2"), "Salary", "Sal2"),
             "Manager", "Emp2");
  ExprPtr e = Project(JoinEq(std::move(mgr_sal), NewSalJoin(), "Sal2", "Old"),
                      {"New"});
  return AlgebraicUpdateMethod::Make(
      &s.schema, MethodSignature({s.emp}), "set_salary_from_manager",
      {UpdateStatement{s.salary, std::move(e)}});
}

Result<std::vector<Receiver>> ReceiversFromQuery(
    const ExprPtr& query, const Instance& instance,
    const MethodSignature& signature, ExecContext& ctx) {
  SETREC_ASSIGN_OR_RETURN(Database db, EncodeInstance(instance));
  SETREC_ASSIGN_OR_RETURN(Relation result, Evaluate(query, db, ctx));
  if (result.scheme().arity() != signature.size()) {
    return Status::InvalidArgument(
        "query result arity does not match the method signature");
  }
  for (std::size_t i = 0; i < signature.size(); ++i) {
    if (result.scheme().attribute(i).domain != signature.class_at(i)) {
      return Status::InvalidArgument(
          "query result domain does not match the signature at position " +
          std::to_string(i));
    }
  }
  std::vector<Receiver> receivers;
  receivers.reserve(result.size());
  // Canonical order: the receiver list is fed to sequential application,
  // whose result may depend on enumeration order.
  for (const Tuple* t : result.SortedTuples()) {
    receivers.push_back(Receiver::Unchecked(t->values()));
  }
  return receivers;
}

}  // namespace setrec
