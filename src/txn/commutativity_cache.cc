#include "txn/commutativity_cache.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "objrel/encoding.h"
#include "relational/expression.h"

namespace setrec {

namespace {

/// Relations backing the properties `method` updates, sorted.
std::vector<std::string> WrittenRelations(const AlgebraicUpdateMethod& method) {
  const Schema& schema = *method.context().schema;
  std::vector<std::string> written;
  for (const UpdateStatement& s : method.statements()) {
    written.push_back(PropertyRelationName(schema, s.property));
  }
  std::sort(written.begin(), written.end());
  return written;
}

/// True when some update expression of `reader` references a relation in the
/// sorted list `written`.
bool ReadsAnyOf(const AlgebraicUpdateMethod& reader,
                const std::vector<std::string>& written) {
  for (const UpdateStatement& s : reader.statements()) {
    for (const std::string& rel : ReferencedRelations(*s.expression)) {
      if (std::binary_search(written.begin(), written.end(), rel)) return true;
    }
  }
  return false;
}

/// The cross-method isolation test (Proposition 5.8 lifted to a pair):
/// disjoint write sets, and neither side reads what the other writes.
bool SyntacticallyCommute(const AlgebraicUpdateMethod& a,
                          const AlgebraicUpdateMethod& b) {
  const std::vector<std::string> writes_a = WrittenRelations(a);
  const std::vector<std::string> writes_b = WrittenRelations(b);
  for (const std::string& rel : writes_a) {
    if (std::binary_search(writes_b.begin(), writes_b.end(), rel)) {
      return false;
    }
  }
  return !ReadsAnyOf(a, writes_b) && !ReadsAnyOf(b, writes_a);
}

}  // namespace

bool CommutativityCache::Commutes(const AlgebraicUpdateMethod& a,
                                  const AlgebraicUpdateMethod& b) {
  const bool self_pair = a.name() == b.name();
  std::string key;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::string ka = a.name() + "@" + std::to_string(epochs_[a.name()]);
    std::string kb = b.name() + "@" + std::to_string(epochs_[b.name()]);
    if (kb < ka) std::swap(ka, kb);
    key = ka + "|" + kb;
    auto it = verdicts_.find(key);
    if (it != verdicts_.end()) {
      ++stats_.hits;
      return it->second.commutes;
    }
    ++stats_.misses;
  }
  // Decide outside the mutex: the oracle can be expensive and concurrent
  // admissions must not serialize on it. A racing thread may decide the same
  // pair; both verdicts agree (the oracle is deterministic), so first-in
  // wins and the duplicate is dropped.
  Verdict verdict;
  if (self_pair) {
    Result<DecisionCertificate> decided = DecideOrderIndependenceCertified(
        a, OrderIndependenceKind::kAbsolute);
    if (decided.ok()) {
      verdict.commutes = decided->order_independent;
      verdict.certificate = std::make_shared<const DecisionCertificate>(
          std::move(decided).value());
    }
    // Undecidable (non-positive method, exhausted budget): conservatively
    // not commutative, with no certificate to show.
  } else {
    verdict.commutes = SyntacticallyCommute(a, b);
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = verdicts_.emplace(key, std::move(verdict));
  return it->second.commutes;
}

void CommutativityCache::Invalidate(const std::string& method_name) {
  std::lock_guard<std::mutex> lock(mu_);
  ++epochs_[method_name];
}

std::shared_ptr<const DecisionCertificate> CommutativityCache::CertificateFor(
    const std::string& method_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto epoch_it = epochs_.find(method_name);
  const std::uint64_t epoch = epoch_it == epochs_.end() ? 0 : epoch_it->second;
  const std::string side = method_name + "@" + std::to_string(epoch);
  auto it = verdicts_.find(side + "|" + side);
  return it == verdicts_.end() ? nullptr : it->second.certificate;
}

CommutativityCache::Stats CommutativityCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace setrec
