#ifndef SETREC_TXN_TXN_MANAGER_H_
#define SETREC_TXN_TXN_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/exec_context.h"
#include "core/instance.h"
#include "core/receiver.h"
#include "store/durable_store.h"
#include "store/retry.h"
#include "txn/commutativity_cache.h"

namespace setrec {

struct TxnOptions {
  /// Backoff for aborted transactions (first-committer-wins conflicts and
  /// retryable governance failures). Unlike the store's statement-level
  /// policy, transaction retries are on by default: a conflict abort is the
  /// expected cost of optimism, not an anomaly.
  RetryPolicy retry{.max_attempts = 8};
  /// Statements flushed per group commit (one fsync covers the batch).
  std::size_t max_group_size = 8;
  /// Enter serial-admission mode when the conflict share of the last
  /// `conflict_window` commit attempts reaches this (window must be full).
  double degrade_threshold = 0.5;
  /// Leave serial mode when the share drops to or below this.
  double reopen_threshold = 0.125;
  std::size_t conflict_window = 16;
  /// Per-attempt resource budget for transaction bodies.
  ExecContext::Limits limits;
  /// Observability sinks (borrowed; must outlive the manager). Every
  /// commit, abort, conflict, degrade and reopen is metered under "txn.*"
  /// names and recorded; terminal aborts dump the recorder to
  /// <store dir>/flight-txn.jsonl.
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;
  FlightRecorder* recorder = &FlightRecorder::Global();
};

/// A concurrent transaction layer over DurableStore, scheduling with the
/// paper's order-independence oracle:
///
///   * **Commutative admission (lock-free data path).** Apply() transactions
///     whose method is certified absolutely order independent — and whose
///     pairs with every in-flight commutative transaction the
///     CommutativityCache certifies — skip snapshots and validation
///     entirely: their sequential application runs at the serialization
///     point inside group commit, and certification guarantees the final
///     instance is bit-identical for *any* arrival interleaving.
///   * **MVCC fallback.** Everything else runs under snapshot isolation:
///     execute against a versioned copy, diff, then validate
///     first-committer-wins against the version chain of committed
///     InstanceDeltas at commit; an overlapping write footprint aborts with
///     kTxnConflict and retries on a fresh snapshot per the RetryPolicy,
///     giving up with kRetryExhausted plus a flight-recorder dump.
///   * **Group commit.** All commits funnel through a leader/follower batch:
///     the first arrival drains the queue into one DurableStore::CommitBatch
///     (one fsync per batch) and distributes per-statement results. This is
///     also the transaction layer's incremental-view maintenance point: when
///     the store was opened with a ViewCache (DurableStoreOptions.view_cache),
///     CommitBatch publishes each statement's delta to it only after the
///     covering fsync — so a transaction's effects reach materialized views
///     strictly after validation *and* durability, never for an aborted or
///     unacknowledged transaction.
///   * **Degradation.** A sliding window of commit outcomes drives a
///     two-state machine: a sustained conflict storm flips admission to
///     serial mode (every transaction runs exclusively; gauge
///     txn.serial_mode = 1) until the conflict share decays, then re-opens.
///
/// Thread safety: every public method may be called from any thread; the
/// caller-supplied method/query/body must stay valid for the call duration.
class TxnManager {
 public:
  /// `store` and `cache` are borrowed and must outlive the manager.
  TxnManager(DurableStore* store, CommutativityCache* cache,
             TxnOptions options = {});
  TxnManager(const TxnManager&) = delete;
  TxnManager& operator=(const TxnManager&) = delete;

  /// One transaction: apply `method` to `receivers` (sequentially, in
  /// canonical order). Runs on the commutative path when admission
  /// certifies it, else via MVCC.
  Status Apply(const AlgebraicUpdateMethod& method,
               std::vector<Receiver> receivers);

  /// One transaction: set-oriented UPDATE (two-phase query semantics under
  /// snapshot isolation — the receiver set is computed on the snapshot).
  /// Always MVCC: the underlying assign method is last-writer-wins, which
  /// is exactly what absolute order independence rules out.
  Status Update(PropertyId property, const ExprPtr& receiver_query);

  /// One transaction: arbitrary mutation of the snapshot copy. Always MVCC.
  Status Mutate(const std::function<Status(Instance&, ExecContext&)>& body);

  /// True while degraded to serial admission.
  bool serial_mode() const;

  struct Stats {
    std::uint64_t commits = 0;     // acknowledged transactions
    std::uint64_t aborts = 0;      // terminal failures (incl. kRetryExhausted)
    std::uint64_t conflicts = 0;   // first-committer-wins aborts (pre-retry)
    std::uint64_t retries = 0;     // retry attempts granted
    std::uint64_t commutative_admissions = 0;
    std::uint64_t mvcc_admissions = 0;
    std::uint64_t degrades = 0;
    std::uint64_t reopens = 0;
    std::uint64_t group_commits = 0;  // batches flushed
  };
  Stats stats() const;

 private:
  /// Object-granular write footprint of a delta, for first-committer-wins
  /// validation. `referenced` carries edge endpoints: an edge write also
  /// conflicts with a concurrent removal of either endpoint object, so a
  /// validated delta always re-applies cleanly.
  struct Footprint {
    std::set<ObjectId> objects;  // objects added or removed
    std::set<std::pair<ObjectId, PropertyId>> slots;  // edge slots written
    std::set<ObjectId> referenced;  // endpoints of written edges

    static Footprint FromDelta(const InstanceDelta& delta);
    bool Overlaps(const Footprint& other) const;
    bool empty() const { return objects.empty() && slots.empty(); }
  };

  struct CommittedVersion {
    std::uint64_t version = 0;
    Footprint footprint;
  };

  /// One queued commit awaiting the group-commit leader.
  struct PendingCommit {
    DurableStore::Statement statement;
    Status result;
    bool done = false;
    /// Filled by the statement when it commits (leader thread only).
    Footprint footprint;
  };

  struct InflightTxn {
    const AlgebraicUpdateMethod* method = nullptr;
  };

  /// Enqueues `pending` and either becomes the leader (drains the queue in
  /// batches through CommitBatch) or waits for its result.
  void SubmitCommit(PendingCommit& pending);

  /// Runs `body` once under snapshot isolation: snapshot, execute, diff,
  /// validate-and-commit through the group pipeline.
  Status AttemptMvcc(const std::function<Status(Instance&, ExecContext&)>& body);

  /// The shared retry loop around one attempt shape.
  Status RunWithRetries(const char* what,
                        const std::function<Status()>& attempt);

  /// True when a committed version > `snapshot_version` overlaps
  /// `footprint`, or an earlier statement of the current batch does.
  bool HasConflict(std::uint64_t snapshot_version,
                   const Footprint& footprint) const;

  Instance TakeSnapshot(std::uint64_t* version);
  void ReleaseSnapshot(std::uint64_t version);
  void PruneChainLocked();

  /// Feeds the degradation window and flips serial mode at the thresholds.
  void RecordOutcome(bool conflicted);

  /// The gate held for a whole transaction in serial mode (unowned lock in
  /// concurrent mode).
  std::unique_lock<std::mutex> SerialGate();

  void Configure(ExecContext& ctx) const;
  void Note(const char* name, std::uint64_t a = 0, std::uint64_t b = 0,
            std::string_view detail = {}) const;
  void Bump(std::uint64_t Stats::*field, const char* metric);
  /// Records + dumps a terminal transaction failure to
  /// <store dir>/flight-txn.jsonl.
  void DumpTxnFailure(const char* what, const Status& status) const;

  DurableStore* const store_;
  CommutativityCache* const cache_;
  const TxnOptions options_;

  // -- Admission & degradation state (adm_mu_) --------------------------------
  mutable std::mutex adm_mu_;
  std::vector<InflightTxn> inflight_;   // commutative group members
  std::deque<bool> outcome_window_;     // true = conflicted
  std::size_t window_conflicts_ = 0;
  bool serial_mode_ = false;
  /// Held for the whole transaction in serial mode.
  std::mutex serial_gate_;

  // -- Version chain (chain_mu_) ----------------------------------------------
  mutable std::mutex chain_mu_;
  std::uint64_t version_ = 0;
  std::deque<CommittedVersion> chain_;
  std::multiset<std::uint64_t> active_snapshots_;

  // -- Group commit (queue_mu_) -----------------------------------------------
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<PendingCommit*> queue_;
  bool leader_active_ = false;
  /// Footprints of statements already committed in the batch being flushed;
  /// leader thread only (batch hand-off happens-before via queue_mu_).
  std::vector<Footprint> batch_footprints_;

  // -- Statistics -------------------------------------------------------------
  mutable std::mutex stats_mu_;
  Stats stats_;
};

}  // namespace setrec

#endif  // SETREC_TXN_TXN_MANAGER_H_
