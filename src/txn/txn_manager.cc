#include "txn/txn_manager.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <thread>

#include "core/exec_options.h"
#include "core/sequential.h"
#include "sql/engine.h"

namespace setrec {

namespace {

constexpr const char* kTxnFlightFile = "flight-txn.jsonl";

std::string TxnFlightPath(const std::string& dir) {
  return (std::filesystem::path(dir) / kTxnFlightFile).string();
}

}  // namespace

TxnManager::TxnManager(DurableStore* store, CommutativityCache* cache,
                       TxnOptions options)
    : store_(store), cache_(cache), options_(options) {
  if (options_.metrics != nullptr) {
    // Register the mode gauge up front so exports show the healthy state
    // even before the first transaction.
    options_.metrics->GaugeNamed("txn.serial_mode").Set(0);
  }
}

// -- Footprints ---------------------------------------------------------------

TxnManager::Footprint TxnManager::Footprint::FromDelta(
    const InstanceDelta& delta) {
  Footprint fp;
  fp.objects.insert(delta.added_objects.begin(), delta.added_objects.end());
  fp.objects.insert(delta.removed_objects.begin(),
                    delta.removed_objects.end());
  for (const auto* edges : {&delta.added_edges, &delta.removed_edges}) {
    for (const Edge& e : *edges) {
      fp.slots.emplace(e.source, e.property);
      fp.referenced.insert(e.source);
      fp.referenced.insert(e.target);
    }
  }
  return fp;
}

namespace {

template <typename Set>
bool Intersects(const Set& a, const Set& b) {
  // Both sets are ordered; walk them in lockstep.
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      return true;
    }
  }
  return false;
}

}  // namespace

bool TxnManager::Footprint::Overlaps(const Footprint& other) const {
  // Same slot, same written object, or one side rewires an edge whose
  // endpoint the other side removes/adds — all are first-committer-wins
  // conflicts (the last case keeps validated deltas re-applicable).
  return Intersects(slots, other.slots) ||
         Intersects(objects, other.objects) ||
         Intersects(objects, other.referenced) ||
         Intersects(referenced, other.objects);
}

// -- Small helpers ------------------------------------------------------------

void TxnManager::Configure(ExecContext& ctx) const {
  ctx.set_tracer(options_.tracer);
  ctx.set_metrics(options_.metrics);
  ctx.set_recorder(options_.recorder);
}

void TxnManager::Note(const char* name, std::uint64_t a, std::uint64_t b,
                      std::string_view detail) const {
  if (options_.recorder != nullptr) {
    options_.recorder->Record(FlightRecorder::EventKind::kNote, name, a, b,
                              detail);
  }
}

void TxnManager::Bump(std::uint64_t Stats::*field, const char* metric) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.*field += 1;
  }
  if (options_.metrics != nullptr) {
    options_.metrics->CounterNamed(metric).Add(1);
  }
}

void TxnManager::DumpTxnFailure(const char* what, const Status& status) const {
  if (options_.recorder == nullptr) return;
  options_.recorder->Record(FlightRecorder::EventKind::kStatus, what,
                            static_cast<std::uint64_t>(status.code()), 0,
                            status.message());
  FlightRecorder::DumpOptions dump;
  const std::string reason = std::string(what) + ": " + status.ToString();
  dump.reason = reason;
  (void)options_.recorder->DumpToFile(TxnFlightPath(store_->dir()), dump);
}

std::unique_lock<std::mutex> TxnManager::SerialGate() {
  bool serial;
  {
    std::lock_guard<std::mutex> lock(adm_mu_);
    serial = serial_mode_;
  }
  // In degraded mode every transaction runs exclusively; transactions that
  // slipped in before the flip still validate, so overlap stays safe.
  if (serial) return std::unique_lock<std::mutex>(serial_gate_);
  return {};
}

bool TxnManager::serial_mode() const {
  std::lock_guard<std::mutex> lock(adm_mu_);
  return serial_mode_;
}

TxnManager::Stats TxnManager::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

// -- Degradation state machine ------------------------------------------------

void TxnManager::RecordOutcome(bool conflicted) {
  std::lock_guard<std::mutex> lock(adm_mu_);
  outcome_window_.push_back(conflicted);
  if (conflicted) ++window_conflicts_;
  if (outcome_window_.size() > options_.conflict_window) {
    if (outcome_window_.front()) --window_conflicts_;
    outcome_window_.pop_front();
  }
  if (outcome_window_.size() < options_.conflict_window) return;
  const double ratio = static_cast<double>(window_conflicts_) /
                       static_cast<double>(outcome_window_.size());
  if (!serial_mode_ && ratio >= options_.degrade_threshold) {
    serial_mode_ = true;
    Note("txn/degrade", window_conflicts_, outcome_window_.size());
    {
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      ++stats_.degrades;
    }
    if (options_.metrics != nullptr) {
      options_.metrics->CounterNamed("txn.degrades").Add(1);
      options_.metrics->GaugeNamed("txn.serial_mode").Set(1);
    }
  } else if (serial_mode_ && ratio <= options_.reopen_threshold) {
    serial_mode_ = false;
    Note("txn/reopen", window_conflicts_, outcome_window_.size());
    {
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      ++stats_.reopens;
    }
    if (options_.metrics != nullptr) {
      options_.metrics->CounterNamed("txn.reopens").Add(1);
      options_.metrics->GaugeNamed("txn.serial_mode").Set(0);
    }
  }
}

// -- Version chain ------------------------------------------------------------

Instance TxnManager::TakeSnapshot(std::uint64_t* version) {
  {
    std::lock_guard<std::mutex> lock(chain_mu_);
    *version = version_;
    active_snapshots_.insert(version_);
  }
  // Read the instance *after* the version: a commit landing in between makes
  // the snapshot strictly newer than its version, which can only cause a
  // spurious conflict (safe), never a missed one.
  return store_->SnapshotState();
}

void TxnManager::ReleaseSnapshot(std::uint64_t version) {
  std::lock_guard<std::mutex> lock(chain_mu_);
  auto it = active_snapshots_.find(version);
  if (it != active_snapshots_.end()) active_snapshots_.erase(it);
  PruneChainLocked();
}

void TxnManager::PruneChainLocked() {
  // A chain entry at version v is only consulted by snapshots older than v.
  const std::uint64_t min_active =
      active_snapshots_.empty() ? version_ : *active_snapshots_.begin();
  while (!chain_.empty() && chain_.front().version <= min_active) {
    chain_.pop_front();
  }
}

bool TxnManager::HasConflict(std::uint64_t snapshot_version,
                             const Footprint& footprint) const {
  {
    std::lock_guard<std::mutex> lock(chain_mu_);
    for (auto it = chain_.rbegin();
         it != chain_.rend() && it->version > snapshot_version; ++it) {
      if (it->footprint.Overlaps(footprint)) return true;
    }
  }
  // Batch mates that committed earlier in the flush under way are not in the
  // chain yet; leader-thread-only access (hand-off via queue_mu_).
  for (const Footprint& other : batch_footprints_) {
    if (other.Overlaps(footprint)) return true;
  }
  return false;
}

// -- Group commit -------------------------------------------------------------

void TxnManager::SubmitCommit(PendingCommit& pending) {
  std::unique_lock<std::mutex> lock(queue_mu_);
  queue_.push_back(&pending);
  if (leader_active_) {
    queue_cv_.wait(lock, [&] { return pending.done; });
    return;
  }
  leader_active_ = true;
  while (!queue_.empty()) {
    std::vector<PendingCommit*> batch;
    while (!queue_.empty() && batch.size() < options_.max_group_size) {
      batch.push_back(queue_.front());
      queue_.pop_front();
    }
    lock.unlock();
    TraceSpan span(options_.tracer, "txn/group-commit");
    batch_footprints_.clear();
    std::vector<DurableStore::Statement> statements;
    statements.reserve(batch.size());
    for (PendingCommit* p : batch) statements.push_back(p->statement);
    std::vector<Status> results;
    (void)store_->CommitBatch(statements, &results);
    {
      std::lock_guard<std::mutex> chain_lock(chain_mu_);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        batch[i]->result = results[i];
        if (results[i].ok() && !batch[i]->footprint.empty()) {
          chain_.push_back({++version_, std::move(batch[i]->footprint)});
        }
      }
      PruneChainLocked();
    }
    {
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      ++stats_.group_commits;
    }
    if (options_.metrics != nullptr) {
      options_.metrics->CounterNamed("txn.group_commits").Add(1);
      options_.metrics->HistogramNamed("txn.group_size")
          .Observe(batch.size());
    }
    lock.lock();
    for (PendingCommit* p : batch) p->done = true;
    queue_cv_.notify_all();
  }
  leader_active_ = false;
}

// -- Transaction execution ----------------------------------------------------

Status TxnManager::RunWithRetries(const char* what,
                                  const std::function<Status()>& attempt) {
  RetrySchedule schedule(options_.retry);
  for (;;) {
    Status status = attempt();
    if (status.ok()) {
      RecordOutcome(false);
      Bump(&Stats::commits, "txn.commits");
      return status;
    }
    if (status.code() == StatusCode::kTxnConflict) {
      RecordOutcome(true);
      Bump(&Stats::conflicts, "txn.conflicts");
      Note("txn/conflict", 0, 0, status.message());
    }
    if (!schedule.ShouldRetry(status)) {
      Bump(&Stats::aborts, "txn.aborts");
      if (status.IsRetryable()) {
        // The schedule ran dry while the failure stayed retryable: report
        // the terminal form so callers do not loop on their own.
        Status exhausted = Status::RetryExhausted(
            std::string(what) + " gave up after " +
            std::to_string(schedule.attempts_used()) +
            " attempts; last: " + status.ToString());
        DumpTxnFailure("txn/retry-exhausted", exhausted);
        return exhausted;
      }
      DumpTxnFailure("txn/abort", status);
      return status;
    }
    Bump(&Stats::retries, "txn.retries");
    const std::chrono::nanoseconds delay = schedule.NextDelay();
    if (delay > std::chrono::nanoseconds::zero()) {
      std::this_thread::sleep_for(delay);
    }
  }
}

Status TxnManager::AttemptMvcc(
    const std::function<Status(Instance&, ExecContext&)>& body) {
  TraceSpan span(options_.tracer, "txn/mvcc-attempt");
  std::uint64_t snapshot_version = 0;
  const Instance snapshot = TakeSnapshot(&snapshot_version);
  Status result = [&]() -> Status {
    Instance working = snapshot;
    {
      ExecContext ctx(options_.limits);
      Configure(ctx);
      SETREC_RETURN_IF_ERROR(body(working, ctx));
    }
    const InstanceDelta delta = DiffInstances(snapshot, working);
    if (delta.empty()) return Status::OK();  // read-only transaction
    const Footprint footprint = Footprint::FromDelta(delta);
    PendingCommit pending;
    pending.statement = [this, &delta, &footprint, &pending,
                         snapshot_version](Instance& instance,
                                           ExecContext& ctx,
                                           const CommitHook& commit)
        -> Status {
      SETREC_RETURN_IF_ERROR(ctx.CheckPoint("txn/validate"));
      if (HasConflict(snapshot_version, footprint)) {
        return Status::TxnConflict(
            "write footprint overlaps a commit after snapshot v" +
            std::to_string(snapshot_version));
      }
      Instance after = instance;
      SETREC_RETURN_IF_ERROR(ApplyDelta(after, delta));
      SETREC_RETURN_IF_ERROR(commit(instance, after));
      instance = std::move(after);
      pending.footprint = footprint;
      batch_footprints_.push_back(footprint);
      return Status::OK();
    };
    SubmitCommit(pending);
    return pending.result;
  }();
  ReleaseSnapshot(snapshot_version);
  return result;
}

Status TxnManager::Apply(const AlgebraicUpdateMethod& method,
                         std::vector<Receiver> receivers) {
  TraceSpan span(options_.tracer, "txn/apply");
  std::unique_lock<std::mutex> gate = SerialGate();

  bool commutative = false;
  if (!gate.owns_lock() && cache_->Commutes(method, method)) {
    // The self-pair decision above ran outside any lock (the first call per
    // method pays the oracle; afterwards it is an O(1) hit). Under the
    // admission lock only cached or syntactic pair checks remain.
    std::lock_guard<std::mutex> lock(adm_mu_);
    if (!serial_mode_) {
      commutative = true;
      for (const InflightTxn& peer : inflight_) {
        if (!cache_->Commutes(method, *peer.method)) {
          commutative = false;
          break;
        }
      }
      if (commutative) inflight_.push_back({&method});
    }
  }

  if (commutative) {
    Bump(&Stats::commutative_admissions, "txn.admit_commutative");
    Note("txn/admit-commutative", receivers.size());
    Status result = RunWithRetries("commutative txn", [&]() -> Status {
      PendingCommit pending;
      pending.statement = [this, &method, &receivers, &pending](
                              Instance& instance, ExecContext& ctx,
                              const CommitHook& commit) -> Status {
        ExecOptions opts;
        opts.ctx = &ctx;
        // No snapshot, no validation: certification made the serialization
        // order immaterial, so applying at the commit point is enough.
        SETREC_ASSIGN_OR_RETURN(
            Instance after, SequentialApply(method, instance, receivers, opts));
        const InstanceDelta delta = DiffInstances(instance, after);
        SETREC_RETURN_IF_ERROR(commit(instance, after));
        instance = std::move(after);
        // MVCC transactions still validate against this commit.
        pending.footprint = Footprint::FromDelta(delta);
        batch_footprints_.push_back(pending.footprint);
        return Status::OK();
      };
      SubmitCommit(pending);
      return pending.result;
    });
    {
      std::lock_guard<std::mutex> lock(adm_mu_);
      auto it = std::find_if(
          inflight_.begin(), inflight_.end(),
          [&](const InflightTxn& t) { return t.method == &method; });
      if (it != inflight_.end()) inflight_.erase(it);
    }
    return result;
  }

  Bump(&Stats::mvcc_admissions, "txn.admit_mvcc");
  Note("txn/admit-mvcc", receivers.size());
  return RunWithRetries("method txn", [&] {
    return AttemptMvcc([&](Instance& instance, ExecContext& ctx) -> Status {
      ExecOptions opts;
      opts.ctx = &ctx;
      SETREC_ASSIGN_OR_RETURN(
          Instance after, SequentialApply(method, instance, receivers, opts));
      instance = std::move(after);
      return Status::OK();
    });
  });
}

Status TxnManager::Update(PropertyId property, const ExprPtr& receiver_query) {
  TraceSpan span(options_.tracer, "txn/update");
  std::unique_lock<std::mutex> gate = SerialGate();
  // Always MVCC: the underlying assign method is last-writer-wins on a
  // shared receiver, the exact shape absolute order independence excludes.
  Bump(&Stats::mvcc_admissions, "txn.admit_mvcc");
  return RunWithRetries("update txn", [&] {
    return AttemptMvcc([&](Instance& instance, ExecContext& ctx) -> Status {
      ExecOptions opts;
      opts.ctx = &ctx;
      return SetOrientedUpdateInPlace(instance, property, receiver_query,
                                      opts);
    });
  });
}

Status TxnManager::Mutate(
    const std::function<Status(Instance&, ExecContext&)>& body) {
  TraceSpan span(options_.tracer, "txn/mutate");
  std::unique_lock<std::mutex> gate = SerialGate();
  Bump(&Stats::mvcc_admissions, "txn.admit_mvcc");
  return RunWithRetries("mutate txn", [&] { return AttemptMvcc(body); });
}

}  // namespace setrec
