#ifndef SETREC_TXN_COMMUTATIVITY_CACHE_H_
#define SETREC_TXN_COMMUTATIVITY_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "algebraic/algebraic_method.h"
#include "algebraic/order_independence.h"

namespace setrec {

/// Memoizes "may transactions running these two methods commute?" so the
/// transaction layer's admission test is O(1) per pair on the hot path. The
/// underlying oracle is the paper's Theorem 5.12 decision procedure — exactly
/// the machine-checkable commutativity oracle that Malta & Martinez's
/// fine-grained concurrency control assumes.
///
/// Two verdict shapes:
///
///   * same method on both sides — the pair commutes iff the method is
///     *absolutely* order independent (DecideOrderIndependenceCertified with
///     kAbsolute): by the adjacent-swap argument, permutation invariance of
///     sequential application over any receiver multiset is precisely what
///     makes two transactions' interleaved applications order-free. The full
///     DecisionCertificate is retained and shared across transactions.
///   * distinct methods — decided syntactically, mirroring Proposition 5.8's
///     isolation condition across methods: the pair commutes when the
///     relation sets the two methods write (PropertyRelationName of their
///     updated properties) are disjoint and neither method's update
///     expressions read (ReferencedRelations) a relation the other writes.
///     Writes that never meet and reads that never see the other's writes
///     compose to the same state in either order.
///
/// Verdicts are keyed by (method name, epoch). Invalidate() bumps a name's
/// epoch, so redefining a method under the same name lazily orphans every
/// cached verdict and certificate mentioning the old definition — O(1), no
/// scan. Undecidable inputs (non-positive methods, exhausted decision
/// budgets) conservatively report "does not commute": the transaction layer
/// then falls back to MVCC, which is always safe.
///
/// Thread safety: lookups and insertions take the cache mutex; the decision
/// procedure itself runs *outside* it, so concurrent population never
/// serializes on the oracle (a lost race costs one duplicate decision whose
/// result is simply discarded).
class CommutativityCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };

  /// True when transactions applying `a` and `b` (to arbitrary receiver
  /// sets) commute, per the class comment. Never fails: undecidable means
  /// false.
  bool Commutes(const AlgebraicUpdateMethod& a, const AlgebraicUpdateMethod& b);

  /// Drops every cached verdict involving `method_name` by bumping its
  /// epoch. Call when a method is redefined under an existing name.
  void Invalidate(const std::string& method_name);

  /// The retained certificate from the self-pair decision of `method_name`
  /// at its current epoch, or null when none has been computed (cross-pair
  /// verdicts and invalidated epochs have no certificate).
  std::shared_ptr<const DecisionCertificate> CertificateFor(
      const std::string& method_name) const;

  Stats stats() const;

 private:
  struct Verdict {
    bool commutes = false;
    std::shared_ptr<const DecisionCertificate> certificate;
  };

  mutable std::mutex mu_;
  std::map<std::string, std::uint64_t> epochs_;
  /// Key: "name@epoch|name@epoch" with the two sides canonically ordered.
  std::map<std::string, Verdict> verdicts_;
  Stats stats_;
};

}  // namespace setrec

#endif  // SETREC_TXN_COMMUTATIVITY_CACHE_H_
