#include "net/client.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <utility>

namespace setrec {

namespace {

/// Transport-layer failures (dead connection, corrupt frame, recv deadline)
/// all funnel into kResourceExhausted so one RetrySchedule governs both
/// network flakiness and server backpressure.
Status TransportError(const char* what, const Status& cause) {
  return Status::ResourceExhausted(std::string("transport: ") + what + ": " +
                                   cause.ToString());
}

std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Mints a process-unique, nonzero trace id: a splitmix64 permutation of a
/// once-seeded steady-clock origin plus a process-wide counter. Not
/// cryptographic — ids only need to be distinct within a merged timeline.
std::uint64_t NextTraceId() {
  static const std::uint64_t seed = static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  static std::atomic<std::uint64_t> counter{0};
  std::uint64_t id =
      SplitMix64(seed + counter.fetch_add(1, std::memory_order_relaxed));
  if (id == 0) id = 1;  // 0 means untraced on the wire
  return id;
}

}  // namespace

Client::Client(Options options) : options_(std::move(options)) {}

Client::~Client() {
  std::lock_guard<std::mutex> lock(mu_);
  if (conn_ != nullptr) {
    Frame goodbye;
    goodbye.type = FrameType::kGoodbye;
    (void)conn_->SendFrame(goodbye);
    conn_->Close();
  }
}

Status Client::EnsureConnectedLocked() {
  if (conn_ != nullptr && !conn_->closed()) return Status::OK();
  conn_.reset();
  Result<ConnectionPtr> dialed = options_.dial();
  if (!dialed.ok()) return TransportError("dial", dialed.status());
  conn_ = std::make_unique<FramedConnection>(
      std::move(dialed).value(), options_.injector, options_.metrics);
  return Status::OK();
}

Result<Response> Client::AttemptLocked(const Request& request,
                                       std::uint64_t id,
                                       const TraceContext& trace) {
  SETREC_RETURN_IF_ERROR(EnsureConnectedLocked());
  Frame out;
  out.type = FrameType::kRequest;
  out.request_id = id;
  out.payload = EncodeRequest(request);
  out.trace_id = trace.trace_id;
  out.trace_parent = trace.parent_span;
  out.sampled = trace.sampled;
  Status sent = conn_->SendFrame(out);
  if (!sent.ok()) {
    conn_.reset();
    return TransportError("send", sent);
  }
  for (;;) {
    Result<Frame> in = conn_->RecvFrame(options_.recv_timeout);
    if (!in.ok()) {
      conn_.reset();
      return TransportError("recv", in.status());
    }
    if (in->type == FrameType::kGoodbye) {
      conn_.reset();
      return Status::ResourceExhausted("transport: server said goodbye");
    }
    if (in->type == FrameType::kResponse && in->request_id == id) {
      Result<Response> decoded = DecodeResponse(in->payload);
      if (!decoded.ok()) {
        conn_.reset();
        return TransportError("decode", decoded.status());
      }
      return decoded;
    }
    // A stale response from an abandoned attempt, or a stray replication
    // frame: not ours, keep waiting for the matching id.
  }
}

void Client::DumpTerminal(const Status& status) {
  if (options_.metrics != nullptr) {
    options_.metrics->CounterNamed("net.client.terminal_failures").Add(1);
  }
  if (options_.recorder == nullptr || options_.flight_dump_path.empty()) {
    return;
  }
  options_.recorder->Record(FlightRecorder::EventKind::kStatus,
                            "net/call-terminal",
                            static_cast<std::uint64_t>(status.code()), 0,
                            status.message());
  (void)options_.recorder->DumpToFile(options_.flight_dump_path);
}

Result<Response> Client::Call(Request request) {
  // Mint the request's family before the call span: the span then carries
  // the family id, and the server continues it from the frame header.
  // Sampling is simply "a tracer is attached" — an untraced client sends
  // byte-identical (pre-trace-format) frames.
  const std::uint64_t trace_id = NextTraceId();
  const bool sampled = options_.tracer != nullptr;
  ScopedTraceContext trace_scope(options_.tracer,
                                 TraceContext{trace_id, 0, sampled});
  TraceSpan span(options_.tracer, "net/call");
  if (request.tenant.empty()) request.tenant = options_.tenant;
  if (request.deadline_ms == 0) {
    request.deadline_ms =
        static_cast<std::uint64_t>(options_.default_deadline.count());
  }
  if (options_.metrics != nullptr) {
    options_.metrics->CounterNamed("net.client.calls").Add(1);
  }

  RetrySchedule schedule(options_.retry);
  // What travels on the wire: the family id plus OUR span id as the remote
  // parent, so the server's request span hangs under this call.
  const TraceContext wire_trace{sampled ? trace_id : 0, span.id(), sampled};
  std::lock_guard<std::mutex> lock(mu_);
  last_call_retries_ = 0;
  last_trace_id_ = sampled ? trace_id : 0;
  std::uint64_t id = next_request_id_++;
  for (;;) {
    Result<Response> attempt = AttemptLocked(request, id, wire_trace);
    const bool served = attempt.ok();
    Status failure = Status::OK();
    if (served) {
      if (attempt->code == StatusCode::kOk) return attempt;
      failure = StatusFromCode(attempt->code, attempt->message);
    } else {
      failure = attempt.status();
      if (options_.metrics != nullptr) {
        options_.metrics->CounterNamed("net.client.transport_errors").Add(1);
      }
    }
    if (!schedule.ShouldRetry(failure)) {
      DumpTerminal(failure);
      // A served non-OK response goes back whole (the caller reads code and
      // message); only transport-terminal calls surface as a bare status.
      return attempt;
    }
    ++last_call_retries_;
    if (options_.metrics != nullptr) {
      options_.metrics->CounterNamed("net.client.retries").Add(1);
    }
    std::chrono::nanoseconds delay = schedule.NextDelay();
    if (served && attempt->retry_after_ms != 0) {
      // Honor the server's backpressure hint when it is the stricter bound.
      delay = std::max(delay,
                       std::chrono::nanoseconds(std::chrono::milliseconds(
                           attempt->retry_after_ms)));
    }
    if (delay > std::chrono::nanoseconds::zero()) {
      std::this_thread::sleep_for(delay);
    }
    // Served-but-retryable (a shed, a deadline): the statement did not run,
    // and the session would replay the cached shed for the old id — take a
    // fresh id. Transport failure: the server may or may not have executed;
    // KEEP the id so a still-alive session dedups instead of re-executing.
    if (served) id = next_request_id_++;
  }
}

Result<Response> Client::Ping() {
  Request request;
  request.op = "ping";
  return Call(std::move(request));
}

Result<Response> Client::Update(const std::string& property,
                                const std::string& receiver_query) {
  Request request;
  request.op = "update";
  request.params["property"] = property;
  request.body = receiver_query;
  return Call(std::move(request));
}

Result<Response> Client::ApplyDelta(const std::string& delta_text) {
  Request request;
  request.op = "delta";
  request.body = delta_text;
  return Call(std::move(request));
}

Result<Response> Client::Query(const std::string& expression) {
  Request request;
  request.op = "query";
  request.body = expression;
  return Call(std::move(request));
}

Result<Response> Client::Explain(const std::string& expression) {
  Request request;
  request.op = "explain";
  request.body = expression;
  return Call(std::move(request));
}

std::uint64_t Client::last_call_retries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_call_retries_;
}

std::uint64_t Client::last_trace_id() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_trace_id_;
}

FailoverReadClient::FailoverReadClient(std::vector<Target> targets,
                                       std::uint64_t max_lag,
                                       MetricsRegistry* metrics)
    : targets_(std::move(targets)), max_lag_(max_lag), metrics_(metrics) {}

Result<Response> FailoverReadClient::Query(const std::string& expression) {
  Status last = Status::FailedPrecondition("failover: no targets configured");
  for (const Target& target : targets_) {
    Result<Response> response = target.client->Query(expression);
    if (!response.ok()) {
      ++dead_;
      if (metrics_ != nullptr) {
        metrics_->CounterNamed("net.failover.dead").Add(1);
      }
      last = response.status();
      continue;
    }
    if (response->code != StatusCode::kOk) {
      ++dead_;
      if (metrics_ != nullptr) {
        metrics_->CounterNamed("net.failover.dead").Add(1);
      }
      last = StatusFromCode(response->code, response->message);
      continue;
    }
    if (!target.is_leader) {
      const std::uint64_t lag =
          response->leader_sequence > response->applied_sequence
              ? response->leader_sequence - response->applied_sequence
              : 0;
      if (lag > max_lag_) {
        ++stale_;
        if (metrics_ != nullptr) {
          metrics_->CounterNamed("net.failover.stale").Add(1);
        }
        last = Status::FailedPrecondition(
            "failover: follower lag " + std::to_string(lag) +
            " exceeds bound " + std::to_string(max_lag_));
        continue;
      }
    }
    return response;
  }
  return last;
}

}  // namespace setrec
