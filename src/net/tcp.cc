#include "net/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <mutex>

namespace setrec {

namespace {

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

/// Waits until `fd` is ready for `events` or the timeout passes. Returns
/// OK on ready, kDeadlineExceeded on timeout.
Status PollFor(int fd, short events, std::chrono::milliseconds timeout) {
  pollfd p{};
  p.fd = fd;
  p.events = events;
  const int ms = timeout.count() > 0x7fffffff
                     ? 0x7fffffff
                     : static_cast<int>(timeout.count());
  for (;;) {
    const int rc = ::poll(&p, 1, ms);
    if (rc > 0) return Status::OK();
    if (rc == 0) return Status::DeadlineExceeded("poll timeout");
    if (errno == EINTR) continue;
    return Errno("poll");
  }
}

class TcpConnection : public Connection {
 public:
  explicit TcpConnection(int fd) : fd_(fd) {}

  ~TcpConnection() override {
    Close();
    ::close(fd_);
  }

  Status Send(std::string_view data) override {
    std::lock_guard<std::mutex> lock(send_mu_);
    if (closed_.load(std::memory_order_acquire)) {
      return Status::FailedPrecondition("tcp: connection closed");
    }
    std::size_t offset = 0;
    while (offset < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + offset,
                               data.size() - offset, MSG_NOSIGNAL);
      if (n >= 0) {
        offset += static_cast<std::size_t>(n);
        continue;
      }
      if (errno == EINTR) continue;
      return Status::FailedPrecondition(
          std::string("tcp: send failed: ") + std::strerror(errno));
    }
    return Status::OK();
  }

  Result<std::size_t> Recv(std::size_t max, std::chrono::milliseconds timeout,
                           std::string* out) override {
    if (closed_.load(std::memory_order_acquire)) {
      return Status::FailedPrecondition("tcp: connection closed");
    }
    SETREC_RETURN_IF_ERROR(PollFor(fd_, POLLIN, timeout));
    if (closed_.load(std::memory_order_acquire)) {
      // Close() raced the poll; the shutdown made the fd readable.
      return Status::FailedPrecondition("tcp: connection closed");
    }
    std::string buffer(max, '\0');
    for (;;) {
      const ssize_t n = ::recv(fd_, buffer.data(), max, 0);
      if (n > 0) {
        out->append(buffer.data(), static_cast<std::size_t>(n));
        return static_cast<std::size_t>(n);
      }
      if (n == 0) return std::size_t{0};  // peer EOF
      if (errno == EINTR) continue;
      return Status::FailedPrecondition(
          std::string("tcp: recv failed: ") + std::strerror(errno));
    }
  }

  void Close() override {
    if (closed_.exchange(true, std::memory_order_acq_rel)) return;
    // Shut both directions but keep the fd open until destruction: a
    // blocked reader in another thread wakes on the shutdown and must
    // never find its fd number recycled under it.
    ::shutdown(fd_, SHUT_RDWR);
  }

  bool closed() const override {
    return closed_.load(std::memory_order_acquire);
  }

 private:
  const int fd_;
  std::mutex send_mu_;
  std::atomic<bool> closed_{false};
};

}  // namespace

Result<std::unique_ptr<TcpListener>> TcpListener::Listen(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("tcp: socket");
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status = Errno("tcp: bind");
    ::close(fd);
    return status;
  }
  if (::listen(fd, 16) != 0) {
    const Status status = Errno("tcp: listen");
    ::close(fd);
    return status;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const Status status = Errno("tcp: getsockname");
    ::close(fd);
    return status;
  }
  return std::unique_ptr<TcpListener>(
      new TcpListener(fd, ntohs(addr.sin_port)));
}

TcpListener::~TcpListener() {
  Close();
  if (fd_ >= 0) ::close(fd_);
}

Result<ConnectionPtr> TcpListener::Accept(std::chrono::milliseconds timeout) {
  if (fd_ < 0) return Status::FailedPrecondition("tcp: listener closed");
  SETREC_RETURN_IF_ERROR(PollFor(fd_, POLLIN, timeout));
  const int conn = ::accept(fd_, nullptr, nullptr);
  if (conn < 0) {
    return Status::FailedPrecondition(
        std::string("tcp: accept failed: ") + std::strerror(errno));
  }
  return ConnectionPtr(new TcpConnection(conn));
}

void TcpListener::Close() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Result<ConnectionPtr> TcpDial(std::uint16_t port,
                              std::chrono::milliseconds timeout) {
  (void)timeout;  // loopback connect() completes (or fails) immediately
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("tcp: socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status = Errno("tcp: connect");
    ::close(fd);
    return status;
  }
  return ConnectionPtr(new TcpConnection(fd));
}

}  // namespace setrec
