#include "net/message.h"

#include <array>
#include <cctype>
#include <limits>
#include <vector>

namespace setrec {

namespace {

/// Decoder hardening caps. A header line longer than this, or more lines
/// than this, is a malformed message by fiat — real headers are tiny.
constexpr std::size_t kMaxHeaderLineBytes = 4096;
constexpr std::size_t kMaxHeaderLines = 256;

/// Overflow-checked base-10 u64 parse of a full token.
Result<std::uint64_t> ParseU64(std::string_view token,
                               const char* what) {
  if (token.empty()) {
    return Status::InvalidArgument(std::string(what) + ": empty number");
  }
  std::uint64_t value = 0;
  for (char c : token) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument(std::string(what) +
                                     ": not a decimal number");
    }
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
      return Status::InvalidArgument(std::string(what) + ": overflow");
    }
    value = value * 10 + digit;
  }
  return value;
}

/// Splits `line` at the first space into (key, rest). No space: rest empty.
std::pair<std::string_view, std::string_view> SplitKey(
    std::string_view line) {
  const std::size_t space = line.find(' ');
  if (space == std::string_view::npos) return {line, {}};
  return {line.substr(0, space), line.substr(space + 1)};
}

/// Shared header-walking core for both decoders: calls `on_line(key, rest)`
/// per header line until the `body <len>` terminator, then validates the
/// length and hands back the raw body.
template <typename OnLine>
Result<std::string> WalkMessage(std::string_view bytes, OnLine&& on_line) {
  std::size_t offset = 0;
  std::size_t lines = 0;
  while (offset < bytes.size()) {
    if (++lines > kMaxHeaderLines) {
      return Status::InvalidArgument("message: too many header lines");
    }
    const std::size_t newline = bytes.find('\n', offset);
    if (newline == std::string_view::npos) {
      return Status::InvalidArgument("message: unterminated header line");
    }
    if (newline - offset > kMaxHeaderLineBytes) {
      return Status::InvalidArgument("message: header line too long");
    }
    const std::string_view line = bytes.substr(offset, newline - offset);
    offset = newline + 1;
    const auto [key, rest] = SplitKey(line);
    if (key == "body") {
      SETREC_ASSIGN_OR_RETURN(const std::uint64_t len,
                              ParseU64(rest, "body length"));
      if (len != bytes.size() - offset) {
        return Status::InvalidArgument(
            "message: body length " + std::to_string(len) + " but " +
            std::to_string(bytes.size() - offset) + " bytes present");
      }
      return std::string(bytes.substr(offset));
    }
    SETREC_RETURN_IF_ERROR(on_line(key, rest));
  }
  return Status::InvalidArgument("message: missing body terminator");
}

void AppendLine(std::string& out, std::string_view key,
                std::string_view value) {
  out.append(key);
  out.push_back(' ');
  out.append(SanitizeHeaderValue(value));
  out.push_back('\n');
}

void AppendU64(std::string& out, std::string_view key, std::uint64_t value) {
  out.append(key);
  out.push_back(' ');
  out.append(std::to_string(value));
  out.push_back('\n');
}

void AppendBody(std::string& out, const std::string& body) {
  AppendU64(out, "body", body.size());
  out.append(body);
}

/// A parameter name travels as part of a header line, so it must be a
/// single space-free token; values are sanitized like any header value.
bool ValidParamName(std::string_view name) {
  if (name.empty() || name.size() > 64) return false;
  for (char c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '.' || c == '-')) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string SanitizeHeaderValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    out.push_back(static_cast<unsigned char>(c) < 0x20 || c == 0x7f ? '?'
                                                                    : c);
  }
  return out;
}

Result<StatusCode> StatusCodeFromName(std::string_view name) {
  static constexpr std::array<StatusCode, 15> kCodes = {
      StatusCode::kOk,          StatusCode::kInvalidArgument,
      StatusCode::kFailedPrecondition, StatusCode::kNotFound,
      StatusCode::kAlreadyExists,      StatusCode::kDiverges,
      StatusCode::kUnimplemented,      StatusCode::kInternal,
      StatusCode::kResourceExhausted,  StatusCode::kDeadlineExceeded,
      StatusCode::kCancelled,          StatusCode::kCorruptedLog,
      StatusCode::kTxnConflict,        StatusCode::kRetryExhausted,
      StatusCode::kOk};
  for (StatusCode code : kCodes) {
    if (name == StatusCodeName(code)) return code;
  }
  return Status::InvalidArgument("unknown status code name '" +
                                 std::string(name) + "'");
}

Status StatusFromCode(StatusCode code, std::string message) {
  switch (code) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(message));
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(std::move(message));
    case StatusCode::kNotFound:
      return Status::NotFound(std::move(message));
    case StatusCode::kAlreadyExists:
      return Status::AlreadyExists(std::move(message));
    case StatusCode::kDiverges:
      return Status::Diverges(std::move(message));
    case StatusCode::kUnimplemented:
      return Status::Unimplemented(std::move(message));
    case StatusCode::kInternal:
      return Status::Internal(std::move(message));
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(std::move(message));
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(std::move(message));
    case StatusCode::kCancelled:
      return Status::Cancelled(std::move(message));
    case StatusCode::kCorruptedLog:
      return Status::CorruptedLog(std::move(message));
    case StatusCode::kTxnConflict:
      return Status::TxnConflict(std::move(message));
    case StatusCode::kRetryExhausted:
      return Status::RetryExhausted(std::move(message));
  }
  return Status::Internal(std::move(message));
}

std::string EncodeRequest(const Request& request) {
  std::string out;
  AppendLine(out, "op", request.op);
  if (!request.tenant.empty()) AppendLine(out, "tenant", request.tenant);
  if (request.deadline_ms != 0) {
    AppendU64(out, "deadline_ms", request.deadline_ms);
  }
  for (const auto& [name, value] : request.params) {
    out.append("param ");
    out.append(SanitizeHeaderValue(name));
    out.push_back(' ');
    out.append(SanitizeHeaderValue(value));
    out.push_back('\n');
  }
  AppendBody(out, request.body);
  return out;
}

Result<Request> DecodeRequest(std::string_view bytes) {
  Request request;
  SETREC_ASSIGN_OR_RETURN(
      request.body,
      WalkMessage(bytes, [&](std::string_view key,
                             std::string_view rest) -> Status {
        if (key == "op") {
          request.op = std::string(rest);
        } else if (key == "tenant") {
          request.tenant = std::string(rest);
        } else if (key == "deadline_ms") {
          SETREC_ASSIGN_OR_RETURN(request.deadline_ms,
                                  ParseU64(rest, "deadline_ms"));
        } else if (key == "param") {
          const auto [name, value] = SplitKey(rest);
          if (!ValidParamName(name)) {
            return Status::InvalidArgument("request: bad parameter name");
          }
          request.params[std::string(name)] = std::string(value);
        } else {
          // Unknown keys are tolerated (skipped) for forward compatibility:
          // an older server must not choke on a newer client's extras.
          return Status::OK();
        }
        return Status::OK();
      }));
  if (request.op.empty()) {
    return Status::InvalidArgument("request: missing op");
  }
  return request;
}

std::string EncodeResponse(const Response& response) {
  std::string out;
  AppendLine(out, "code", StatusCodeName(response.code));
  if (!response.message.empty()) {
    AppendLine(out, "message", response.message);
  }
  if (response.retry_after_ms != 0) {
    AppendU64(out, "retry_after_ms", response.retry_after_ms);
  }
  if (response.applied_sequence != 0) {
    AppendU64(out, "applied_sequence", response.applied_sequence);
  }
  if (response.leader_sequence != 0) {
    AppendU64(out, "leader_sequence", response.leader_sequence);
  }
  AppendBody(out, response.body);
  return out;
}

Result<Response> DecodeResponse(std::string_view bytes) {
  Response response;
  bool saw_code = false;
  SETREC_ASSIGN_OR_RETURN(
      response.body,
      WalkMessage(bytes, [&](std::string_view key,
                             std::string_view rest) -> Status {
        if (key == "code") {
          SETREC_ASSIGN_OR_RETURN(response.code, StatusCodeFromName(rest));
          saw_code = true;
        } else if (key == "message") {
          response.message = std::string(rest);
        } else if (key == "retry_after_ms") {
          SETREC_ASSIGN_OR_RETURN(response.retry_after_ms,
                                  ParseU64(rest, "retry_after_ms"));
        } else if (key == "applied_sequence") {
          SETREC_ASSIGN_OR_RETURN(response.applied_sequence,
                                  ParseU64(rest, "applied_sequence"));
        } else if (key == "leader_sequence") {
          SETREC_ASSIGN_OR_RETURN(response.leader_sequence,
                                  ParseU64(rest, "leader_sequence"));
        }
        return Status::OK();  // unknown keys tolerated, as in requests
      }));
  if (!saw_code) {
    return Status::InvalidArgument("response: missing code");
  }
  return response;
}

}  // namespace setrec
