#ifndef SETREC_NET_CLIENT_H_
#define SETREC_NET_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/fault_injection.h"
#include "net/frame.h"
#include "net/message.h"
#include "net/replica.h"  // Dialer
#include "net/transport.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "store/retry.h"

namespace setrec {

/// A retrying client for one tenant on one server.
///
/// Retry discipline (the heart of the at-most-once story):
///   - A *transport* failure (connection died, frame corrupted, recv
///     deadline) is mapped to kResourceExhausted so the shared RetrySchedule
///     governs it, and the retry re-sends the SAME request id on a fresh
///     connection-session. If the server executed the original and the
///     response was lost, the session dedup cache... does not apply across
///     connections — but the server-side statement is idempotent by
///     construction (set-oriented updates converge), so at-least-once across
///     reconnects is safe. Within one connection a re-sent id returns the
///     cached response without re-executing.
///   - A *retryable response* (a shed with kResourceExhausted, a deadline)
///     means the server answered: the statement did NOT execute. The retry
///     uses a NEW id — reusing the old one would replay the cached shed
///     forever — and waits max(schedule delay, server's retry_after_ms
///     hint): explicit backpressure, honored.
///   - Everything else is terminal; if a flight recorder is wired, a
///     redacted dump lands at `flight_dump_path` before the error returns.
///
/// Thread-safe: calls are serialized on an internal mutex (one connection,
/// one outstanding request). For parallel load, use one Client per thread —
/// they may share a RetryPolicy; determinism survives (see RetrySchedule).
class Client {
 public:
  struct Options {
    std::string tenant;
    Dialer dial;
    /// Backoff for retryable failures (transport faults and sheds).
    RetryPolicy retry;
    /// Deadline attached to every request that does not set its own.
    std::chrono::milliseconds default_deadline{1000};
    /// How long to wait for each response frame.
    std::chrono::milliseconds recv_timeout{1000};
    FaultInjector* injector = nullptr;
    MetricsRegistry* metrics = nullptr;
    Tracer* tracer = nullptr;
    /// When non-null, terminal call failures dump here.
    FlightRecorder* recorder = nullptr;
    std::string flight_dump_path;
  };

  explicit Client(Options options);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// One governed round trip: fills in tenant/deadline defaults, retries per
  /// the policy, and returns the server's response (which may itself carry a
  /// non-OK code that was not retryable — callers check `code`).
  Result<Response> Call(Request request);

  // Convenience wrappers over Call(); each returns the response so callers
  // can read sequences and bodies.
  Result<Response> Ping();
  /// UPDATE `property` for the receiver set of `receiver_query` (expression
  /// text, as in the text format).
  Result<Response> Update(const std::string& property,
                          const std::string& receiver_query);
  /// Applies a delta (text format) as one committed statement.
  Result<Response> ApplyDelta(const std::string& delta_text);
  /// Evaluates a query; the response body is the rendered relation.
  Result<Response> Query(const std::string& expression);
  Result<Response> Explain(const std::string& expression);

  /// Retries consumed by the most recent Call (0 = first attempt sufficed).
  std::uint64_t last_call_retries() const;

  /// Trace id minted for the most recent Call (0 when the client runs
  /// without a tracer — untraced calls send pre-trace-format frames). Tests
  /// use this to find the call's family in merged timelines.
  std::uint64_t last_trace_id() const;

 private:
  Status EnsureConnectedLocked();
  /// One attempt: send + await the matching response, stamping the frame
  /// with `trace` (trace_id/parent_span/sampled travel in the header).
  /// Transport failures come back as kResourceExhausted("transport: ...")
  /// with the connection torn down.
  Result<Response> AttemptLocked(const Request& request, std::uint64_t id,
                                 const TraceContext& trace);
  void DumpTerminal(const Status& status);

  Options options_;
  mutable std::mutex mu_;
  std::unique_ptr<FramedConnection> conn_;  // guarded by mu_
  std::uint64_t next_request_id_ = 1;       // guarded by mu_
  std::uint64_t last_call_retries_ = 0;     // guarded by mu_
  std::uint64_t last_trace_id_ = 0;         // guarded by mu_
};

/// Read failover across a replicated deployment: queries prefer follower
/// endpoints (cheap, horizontally scaled) and fall back to the leader when a
/// follower is unreachable or too stale — `max_lag` bounds the acceptable
/// gap between the follower's applied and leader sequences.
///
/// `targets` are tried in order; the leader (last entry by convention, or
/// flagged) is the final authority. Counters: net.failover.stale (follower
/// answered but lagged too far), net.failover.dead (follower call failed).
class FailoverReadClient {
 public:
  struct Target {
    Client* client = nullptr;  // borrowed; must outlive this object
    bool is_leader = false;
  };

  FailoverReadClient(std::vector<Target> targets, std::uint64_t max_lag,
                     MetricsRegistry* metrics = nullptr);

  /// Queries the first acceptable target. OK responses from a follower
  /// whose lag exceeds max_lag are rejected (counted stale) and the search
  /// continues; if every target fails, the last error wins.
  Result<Response> Query(const std::string& expression);

  std::uint64_t stale_rejections() const { return stale_; }
  std::uint64_t dead_targets_seen() const { return dead_; }

 private:
  std::vector<Target> targets_;
  std::uint64_t max_lag_;
  MetricsRegistry* metrics_;
  std::uint64_t stale_ = 0;
  std::uint64_t dead_ = 0;
};

}  // namespace setrec

#endif  // SETREC_NET_CLIENT_H_
