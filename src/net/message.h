#ifndef SETREC_NET_MESSAGE_H_
#define SETREC_NET_MESSAGE_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "core/status.h"

namespace setrec {

/// Request/response payloads carried inside kRequest/kResponse frames.
///
/// The encoding follows the repo's text-format discipline — line-oriented,
/// human-readable, hardened against hostile input — with one twist: the
/// free-form body (an expression, a delta, an instance) is *length-prefixed*
/// rather than escaped, so arbitrary bytes ride through without an escaping
/// layer:
///
///   op update
///   tenant acme
///   deadline_ms 250
///   param property f
///   body 38
///   <exactly 38 raw bytes>
///
/// Header lines are `key value`; the `body <len>` line is always last. The
/// decoder is the funnel every peer byte passes through: line length and
/// count are capped, integers are overflow-checked, the body length is
/// validated against what is physically present, and every defect returns
/// kInvalidArgument — never a crash, never an allocation driven by an
/// unvalidated length (the frame layer already capped the payload).
///
/// Values that travel in header lines (status messages, tenant names) pass
/// through SanitizeHeaderValue, which replaces control bytes — so a payload
/// can never smuggle a line break into a header and desynchronize the
/// decoder. This mirrors the obs/json_escape.h funnel rule: one chokepoint,
/// applied at encode time, checked at decode time.

struct Request {
  /// Operation name: ping | update | delta | query | explain | pull
  /// | snapshot | stats.
  std::string op;
  std::string tenant;
  /// Client-imposed deadline for serving this request, in milliseconds
  /// (0 = server default). The server clamps its ExecContext timeout to the
  /// remaining allowance, so an expensive receiver query is cut off by the
  /// *request's* deadline, not just the store-wide budget.
  std::uint64_t deadline_ms = 0;
  /// Small string parameters (property names, pull cursors).
  std::map<std::string, std::string> params;
  /// Raw statement body (expression text, delta text); may be empty.
  std::string body;
};

struct Response {
  StatusCode code = StatusCode::kOk;
  /// One sanitized line of detail for non-OK codes.
  std::string message;
  /// For kResourceExhausted sheds: the server's suggested backoff before
  /// retrying, which the client folds into its RetrySchedule delay.
  std::uint64_t retry_after_ms = 0;
  /// Sequence the serving store/replica had applied when answering.
  std::uint64_t applied_sequence = 0;
  /// The leader's last committed sequence as known to the server — on a
  /// follower the gap to applied_sequence is the replication lag the
  /// failover client screens on.
  std::uint64_t leader_sequence = 0;
  std::string body;
};

std::string EncodeRequest(const Request& request);
Result<Request> DecodeRequest(std::string_view bytes);

std::string EncodeResponse(const Response& response);
Result<Response> DecodeResponse(std::string_view bytes);

/// Replaces every control byte (including CR/LF) with '?'; header values
/// must stay single-line (see the funnel note above).
std::string SanitizeHeaderValue(std::string_view value);

/// Inverse of StatusCodeName (core/status.h); unknown names fail.
Result<StatusCode> StatusCodeFromName(std::string_view name);

/// Rebuilds a Status from a wire (code, message) pair — the client-side
/// counterpart of Response::code. kOk yields OK (the message is ignored).
Status StatusFromCode(StatusCode code, std::string message);

}  // namespace setrec

#endif  // SETREC_NET_MESSAGE_H_
