#ifndef SETREC_NET_SLOWLOG_H_
#define SETREC_NET_SLOWLOG_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "core/status.h"

namespace setrec {

/// Bounded per-tenant slow-request capture: one JSON object per line
/// (slowlog.jsonl), appended when a request exceeds the tenant's
/// slow_request_threshold. Each entry carries the request's trace id, op,
/// latency, an EXPLAIN ANALYZE plan and a redacted flight-recorder slice —
/// assembled by the server (net/server.cc); this class only owns the file
/// discipline.
///
/// Bounding: the log wraps. When appending a line would push the file past
/// `max_bytes`, the file is truncated first and the entry starts a fresh
/// generation — a misbehaving tenant can never grow its slow log without
/// bound, and the most recent capture is always present (an entry larger
/// than the whole budget is dropped, counted, never partially written).
///
/// Thread safety: Append serializes on an internal mutex; entries are
/// written whole, so concurrent sessions never interleave bytes.
class SlowRequestLog {
 public:
  /// Opens (creates or resumes) the log at `path`. `max_bytes` caps the
  /// file; 0 means a default of 1 MiB.
  SlowRequestLog(std::string path, std::uint64_t max_bytes);

  SlowRequestLog(const SlowRequestLog&) = delete;
  SlowRequestLog& operator=(const SlowRequestLog&) = delete;

  /// Appends `json_line` plus a trailing newline, wrapping the file first
  /// if the write would exceed the byte budget. An entry that alone
  /// exceeds the budget is dropped (counted in dropped()).
  Status Append(const std::string& json_line);

  const std::string& path() const { return path_; }
  std::uint64_t max_bytes() const { return max_bytes_; }

  /// Entries appended / dropped-for-size / wrap truncations so far.
  std::uint64_t entries() const;
  std::uint64_t dropped() const;
  std::uint64_t wraps() const;

 private:
  const std::string path_;
  const std::uint64_t max_bytes_;
  mutable std::mutex mu_;
  std::uint64_t size_ = 0;  // current file size in bytes
  std::uint64_t entries_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t wraps_ = 0;
};

}  // namespace setrec

#endif  // SETREC_NET_SLOWLOG_H_
