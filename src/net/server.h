#ifndef SETREC_NET_SERVER_H_
#define SETREC_NET_SERVER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/thread_pool.h"
#include "net/frame.h"
#include "net/message.h"
#include "net/replica.h"
#include "net/slowlog.h"
#include "net/transport.h"
#include "obs/trace.h"
#include "store/durable_store.h"

namespace setrec {

/// Per-tenant service configuration. Each tenant gets its own DurableStore
/// (in a subdirectory of the server's data dir) and its own admission gate,
/// so one tenant's burst cannot starve another's commits or exhaust shared
/// memory: isolation is structural, not cooperative.
struct TenantConfig {
  std::string name;
  /// Statements admitted concurrently (the store serializes commits on its
  /// own mutex anyway; >1 mainly overlaps read-side work).
  std::size_t max_concurrency = 1;
  /// Requests allowed to *wait* for admission beyond the concurrency
  /// limit. Arrivals past this are shed immediately with a retryable
  /// kResourceExhausted response carrying a server-suggested backoff — the
  /// explicit backpressure contract, in place of an unbounded queue.
  std::size_t max_queue = 16;
  /// Deadline applied when a request does not carry its own.
  std::chrono::milliseconds default_deadline{1000};
  /// Store configuration (durability cadence, per-attempt limits, retry
  /// policy, fault injector, sinks). Used verbatim — tests wire their
  /// injectors and private recorders here — except that when
  /// `incremental_views` is on the server installs the tenant's own
  /// ViewCache as `store_options.view_cache` (the field must be left null).
  DurableStoreOptions store_options;
  /// Maintain a per-tenant incremental ViewCache: the store primes it at
  /// recovery and feeds it every durable commit, queries are served from
  /// incrementally-maintained views (falling back to from-scratch
  /// evaluation on any cache error), and updates derive their receiver sets
  /// through it. Replica-backed tenants have no cache either way — they
  /// re-evaluate against the replicated state.
  bool incremental_views = true;
  /// Slow-request capture: an update/delta/query whose total service time
  /// (admission wait + execution) reaches this threshold is appended to the
  /// tenant's bounded slowlog.jsonl (net/slowlog.h) with its trace id, an
  /// EXPLAIN ANALYZE plan and a redacted flight-recorder slice. Zero (the
  /// default) disables capture.
  std::chrono::nanoseconds slow_request_threshold{0};
  /// Byte budget of the tenant's slowlog.jsonl (0 = SlowRequestLog's 1 MiB
  /// default). The log wraps; it never grows past this.
  std::uint64_t slowlog_max_bytes = 0;
};

struct ServerOptions {
  /// Parent directory; tenant stores live in <data_dir>/<tenant>/.
  std::string data_dir;
  const Schema* schema = nullptr;
  /// Base of the backoff hint attached to shed responses; the hint grows
  /// with the queue depth at shed time, so a deeper pile-up pushes clients
  /// further away.
  std::uint64_t suggested_backoff_ms = 5;
  /// Session read timeout: also the drain latency bound — a draining
  /// session notices within one timeout.
  std::chrono::milliseconds recv_timeout{50};
  /// Network-plane fault injector for the server's endpoints (may be null;
  /// distinct from the storage injectors inside TenantConfig).
  FaultInjector* injector = nullptr;
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;
  FlightRecorder* recorder = &FlightRecorder::Global();
  /// Sessions run on this pool (borrowed); null = the server owns a
  /// private pool of `own_pool_workers`.
  ThreadPool* pool = nullptr;
  std::size_t own_pool_workers = 4;
};

/// A blocking-I/O multi-tenant service over the durable store: each
/// accepted connection becomes a session task on the thread pool, reading
/// framed requests and answering them in order. One session serves one
/// client loop; concurrency comes from many sessions, bounded per tenant by
/// the admission gate.
///
/// Request ids within a session must be strictly increasing. The session
/// remembers its last id and the response it sent: a re-sent id (a client
/// retrying after a lost response) gets the *cached* response, not a second
/// execution — at-most-once per connection. Across reconnects the protocol
/// is at-least-once; writes that must survive that are idempotent by
/// construction (set-oriented updates converge under re-application).
///
/// Ops served: ping, update, delta, query, explain, stats on any tenant
/// (writes refused on replica-backed tenants); pull and snapshot are the
/// replication feed (net/replica.h consumes them).
class Server {
 public:
  static Result<std::unique_ptr<Server>> Create(
      ServerOptions options, std::vector<TenantConfig> tenants);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Adopts `conn` as a new session (posted to the pool). During or after
  /// Drain() the connection is closed immediately instead.
  void Serve(ConnectionPtr conn);

  /// Registers a read-only tenant served from a follower replica instead
  /// of a local store (queries/explains run against the replicated state
  /// and report its lag; writes get kFailedPrecondition). The replica is
  /// borrowed and must outlive the server.
  Status ServeReplica(const std::string& tenant, FollowerReplica* replica);

  /// Graceful shutdown: stop accepting, shed every queued request, let
  /// in-flight statements finish, send each session a goodbye, and return
  /// once every session has exited. Idempotent.
  void Drain();

  /// The tenant's store (null for unknown or replica-backed tenants) —
  /// test and embedding access.
  DurableStore* store(const std::string& tenant);

  std::size_t active_sessions() const;
  bool draining() const;

 private:
  struct Tenant;

  Server(ServerOptions options, std::unique_ptr<ThreadPool> owned_pool);

  void SessionLoop(ConnectionPtr conn);
  /// Serves one decoded request, returning the response to send. WAL-record
  /// streaming ops (pull) write their stream through `framed` before the
  /// returned trailer is sent. `trace` is the request's family with
  /// parent_span repurposed as the *local* net/request span id — the origin
  /// recorded against commits so replication pulls can continue the family.
  Response Dispatch(const Request& request, FramedConnection& framed,
                    const TraceContext& trace);

  Response HandlePing(Tenant& tenant);
  Response HandleUpdate(Tenant& tenant, const Request& request,
                        std::chrono::steady_clock::time_point deadline,
                        const TraceContext& trace);
  Response HandleDelta(Tenant& tenant, const Request& request,
                       std::chrono::steady_clock::time_point deadline,
                       const TraceContext& trace);
  Response HandleQuery(Tenant& tenant, const Request& request,
                       std::chrono::steady_clock::time_point deadline,
                       const TraceContext& trace);
  Response HandleExplain(Tenant& tenant, const Request& request);
  Response HandlePull(Tenant& tenant, const Request& request,
                      FramedConnection& framed);
  Response HandleSnapshot(Tenant& tenant);
  /// Metrics export: the registry's WriteText by default, or the Prometheus
  /// exposition when the request carries `format=prometheus` — the same
  /// bytes a scrape endpoint would serve.
  Response HandleStats(const Request& request);

  /// Slow-request capture (TenantConfig::slow_request_threshold): appends
  /// one JSON line — op, trace id, latency, an EXPLAIN ANALYZE plan, the
  /// request's span subtree and a redacted flight-recorder slice — to the
  /// tenant's slowlog.
  void CaptureSlowRequest(Tenant& tenant, const Request& request,
                          const TraceContext& trace,
                          std::chrono::nanoseconds latency);

  /// Blocks until the tenant admits one more request or sheds it; OK means
  /// admitted and the caller must call Release(). The deadline bounds the
  /// queue wait.
  Response Admit(Tenant& tenant,
                 std::chrono::steady_clock::time_point deadline,
                 bool* admitted);
  void Release(Tenant& tenant);

  Tenant* FindTenant(const std::string& name);
  /// Statement limits for this request: the tenant's per-attempt budget
  /// with the timeout clamped to the request deadline's remaining time.
  ExecContext::Limits RequestLimits(
      const Tenant& tenant,
      std::chrono::steady_clock::time_point deadline) const;

  ServerOptions options_;
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_;

  mutable std::mutex tenants_mu_;
  std::map<std::string, std::unique_ptr<Tenant>> tenants_;

  mutable std::mutex sessions_mu_;
  std::condition_variable sessions_cv_;
  std::size_t active_sessions_ = 0;
  bool draining_ = false;
};

}  // namespace setrec

#endif  // SETREC_NET_SERVER_H_
