#include "net/frame.h"

#include <algorithm>
#include <thread>

#include "store/wal.h"

namespace setrec {

namespace {

constexpr char kMagic[4] = {'S', 'R', 'N', '1'};
constexpr std::size_t kHeaderBytes = 24;

void PutU32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

void PutU64(std::string& out, std::uint64_t v) {
  PutU32(out, static_cast<std::uint32_t>(v & 0xffffffffu));
  PutU32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t GetU32(const char* p) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

std::uint64_t GetU64(const char* p) {
  return static_cast<std::uint64_t>(GetU32(p)) |
         static_cast<std::uint64_t>(GetU32(p + 4)) << 32;
}

std::uint8_t FrameFlags(const Frame& frame) {
  std::uint8_t flags = 0;
  if (frame.trace_id != 0) flags |= kFrameFlagTraced;
  if (frame.sampled) flags |= kFrameFlagSampled;
  return flags;
}

/// The checksummed region: type | flags | reserved | request id |
/// [trace block] | payload, exactly the bytes after the CRC field on the
/// wire — the trace block, when present, is covered like any payload byte.
std::uint32_t FrameCrc(const Frame& frame) {
  std::string covered;
  covered.reserve(12 + kTraceBlockBytes + frame.payload.size());
  covered.push_back(static_cast<char>(frame.type));
  covered.push_back(static_cast<char>(FrameFlags(frame)));
  covered.push_back(0);  // reserved
  covered.push_back(0);
  PutU64(covered, frame.request_id);
  if (frame.trace_id != 0) {
    PutU64(covered, frame.trace_id);
    PutU64(covered, frame.trace_parent);
  }
  return Crc32(frame.payload, Crc32(covered));
}

std::string EncodeFrame(const Frame& frame) {
  const std::uint32_t extra = frame.trace_id != 0 ? kTraceBlockBytes : 0;
  std::string out;
  out.reserve(kHeaderBytes + extra + frame.payload.size());
  out.append(kMagic, sizeof kMagic);
  PutU32(out, static_cast<std::uint32_t>(frame.payload.size()) + extra);
  PutU32(out, FrameCrc(frame));
  out.push_back(static_cast<char>(frame.type));
  out.push_back(static_cast<char>(FrameFlags(frame)));
  out.push_back(0);  // reserved
  out.push_back(0);
  PutU64(out, frame.request_id);
  if (frame.trace_id != 0) {
    PutU64(out, frame.trace_id);
    PutU64(out, frame.trace_parent);
  }
  out.append(frame.payload);
  return out;
}

bool ValidFrameType(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(FrameType::kRequest) &&
         t <= static_cast<std::uint8_t>(FrameType::kGoodbye);
}

}  // namespace

FramedConnection::FramedConnection(ConnectionPtr conn, FaultInjector* injector,
                                   MetricsRegistry* metrics)
    : conn_(std::move(conn)), injector_(injector), metrics_(metrics) {}

void FramedConnection::Close() {
  if (conn_ != nullptr) conn_->Close();
}

Status FramedConnection::WriteAll(std::string_view bytes) {
  Status sent = conn_->Send(bytes);
  if (sent.ok() && metrics_ != nullptr) {
    metrics_->CounterNamed("net.bytes_sent").Add(bytes.size());
  }
  return sent;
}

Status FramedConnection::SendFrame(const Frame& frame) {
  if (conn_ == nullptr || conn_->closed()) {
    return Status::FailedPrecondition("connection closed");
  }
  if (frame.payload.size() > kMaxFramePayloadBytes) {
    return Status::InvalidArgument("frame payload exceeds the wire cap");
  }
  const std::string bytes = EncodeFrame(frame);
  NetFaultPlan plan;
  if (injector_ != nullptr) plan = injector_->NetProbe("net/send");
  switch (plan.kind) {
    case NetFaultKind::kNone:
      break;
    case NetFaultKind::kDropFrame:
      // The network ate it: the sender cannot tell, so report success.
      return Status::OK();
    case NetFaultKind::kDuplicateFrame: {
      SETREC_RETURN_IF_ERROR(WriteAll(bytes));
      break;  // fall through to the (second) regular send below
    }
    case NetFaultKind::kTruncateFrame: {
      const std::size_t cut =
          std::min<std::size_t>(plan.byte_offset, bytes.size());
      Status partial = WriteAll(std::string_view(bytes).substr(0, cut));
      conn_->Close();
      if (!partial.ok()) return partial;
      return Status::Internal("injected truncated frame: " +
                              std::to_string(cut) + " of " +
                              std::to_string(bytes.size()) + " bytes sent");
    }
    case NetFaultKind::kDelayFrame:
      std::this_thread::sleep_for(std::chrono::milliseconds(plan.delay_ms));
      break;
    case NetFaultKind::kDisconnect:
      conn_->Close();
      return Status::FailedPrecondition("injected disconnect on send");
  }
  SETREC_RETURN_IF_ERROR(WriteAll(bytes));
  if (metrics_ != nullptr) metrics_->CounterNamed("net.frames_sent").Add(1);
  return Status::OK();
}

Result<Frame> FramedConnection::RecvFrame(std::chrono::milliseconds timeout) {
  if (conn_ == nullptr) {
    return Status::FailedPrecondition("connection closed");
  }
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    NetFaultPlan plan;
    if (injector_ != nullptr) plan = injector_->NetProbe("net/recv");
    switch (plan.kind) {
      case NetFaultKind::kNone:
      case NetFaultKind::kDropFrame:      // applied after decode, below
      case NetFaultKind::kDuplicateFrame: // meaningless on receive: ignored
      case NetFaultKind::kTruncateFrame:  // a receiver cannot truncate the
        break;                            // stream: treated as none
      case NetFaultKind::kDelayFrame:
        std::this_thread::sleep_for(std::chrono::milliseconds(plan.delay_ms));
        break;
      case NetFaultKind::kDisconnect:
        conn_->Close();
        return Status::FailedPrecondition("injected disconnect on recv");
    }

    // Buffer until a complete frame is decodable, validating what is
    // already visible first — a bad magic or an absurd length will never
    // become a valid frame, so fail on them without waiting for more bytes.
    for (;;) {
      if (inbox_.size() >= sizeof kMagic &&
          inbox_.compare(0, sizeof kMagic, kMagic, sizeof kMagic) != 0) {
        conn_->Close();
        return Status::CorruptedLog("bad frame magic");
      }
      if (inbox_.size() >= kHeaderBytes) {
        const std::uint32_t want = GetU32(inbox_.data() + 4);
        if (want > kMaxFramePayloadBytes + kTraceBlockBytes) {
          conn_->Close();
          return Status::CorruptedLog("frame length exceeds the wire cap");
        }
        if (inbox_.size() >= kHeaderBytes + want) break;  // frame complete
      }
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) {
        return Status::DeadlineExceeded("recv timed out");
      }
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                now);
      Result<std::size_t> got = conn_->Recv(
          1 << 16, std::max(remaining, std::chrono::milliseconds(1)),
          &inbox_);
      SETREC_RETURN_IF_ERROR(got.status());
      if (metrics_ != nullptr && *got > 0) {
        metrics_->CounterNamed("net.bytes_recv").Add(*got);
      }
      if (*got == 0) {
        // Peer closed. Silence between frames is a clean goodbye-less
        // close; a partial frame means the stream tore mid-frame.
        if (inbox_.empty()) {
          return Status::FailedPrecondition("connection closed by peer");
        }
        conn_->Close();
        return Status::CorruptedLog("connection closed mid-frame");
      }
    }

    const std::uint32_t length = GetU32(inbox_.data() + 4);
    const std::uint32_t wire_crc = GetU32(inbox_.data() + 8);
    const std::uint8_t type = static_cast<std::uint8_t>(inbox_[12]);
    const std::uint8_t flags = static_cast<std::uint8_t>(inbox_[13]);
    // Checksum the wire bytes themselves (everything after the CRC field),
    // not a reconstruction of the frame — a flipped flags/reserved byte
    // must be detected even though the decoder otherwise ignores those.
    const std::uint32_t computed = Crc32(
        std::string_view(inbox_.data() + 12, (kHeaderBytes - 12) + length));
    Frame frame;
    frame.request_id = GetU64(inbox_.data() + 16);
    frame.payload = inbox_.substr(kHeaderBytes, length);
    inbox_.erase(0, kHeaderBytes + length);
    if (!ValidFrameType(type)) {
      conn_->Close();
      return Status::CorruptedLog("unknown frame type " +
                                  std::to_string(type));
    }
    frame.type = static_cast<FrameType>(type);
    if (computed != wire_crc) {
      conn_->Close();
      return Status::CorruptedLog("frame crc mismatch");
    }
    // Trace block: validated only after the CRC passed, so a flipped flag
    // bit is always "crc mismatch", never a bogus trace context.
    if ((flags & kFrameFlagTraced) != 0) {
      if (frame.payload.size() < kTraceBlockBytes) {
        conn_->Close();
        return Status::CorruptedLog("frame trace block truncated");
      }
      frame.trace_id = GetU64(frame.payload.data());
      frame.trace_parent = GetU64(frame.payload.data() + 8);
      frame.sampled = (flags & kFrameFlagSampled) != 0;
      frame.payload.erase(0, kTraceBlockBytes);
    }
    if (plan.kind == NetFaultKind::kDropFrame) {
      continue;  // the network ate it after all: decode the next one
    }
    if (metrics_ != nullptr) metrics_->CounterNamed("net.frames_recv").Add(1);
    return frame;
  }
}

}  // namespace setrec
