#ifndef SETREC_NET_TCP_H_
#define SETREC_NET_TCP_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "net/transport.h"

namespace setrec {

/// Minimal loopback TCP transport: the same Connection contract as the
/// in-process pair, over real sockets. Deliberately small — IPv4 loopback
/// only, blocking I/O with poll()-bounded reads, no TLS — because the tests
/// that need "a real socket" need exactly that and nothing more. The
/// deterministic transport for everything else is CreateInProcessPair.
///
/// Cross-thread Close() is implemented with shutdown(2): the file
/// descriptor stays open until destruction (so a concurrent blocked read
/// polls on a valid fd, never a recycled one) but both directions are shut,
/// which wakes the blocked call per the Connection contract.
class TcpListener {
 public:
  /// Binds and listens on 127.0.0.1:`port` (0 = kernel-assigned; read the
  /// outcome from port()). Fails with kUnimplemented-flavored kInternal on
  /// systems without sockets — callers treat that as "skip".
  static Result<std::unique_ptr<TcpListener>> Listen(std::uint16_t port = 0);

  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Accepts one connection, waiting at most `timeout`; kDeadlineExceeded
  /// when none arrives, kFailedPrecondition after Close().
  Result<ConnectionPtr> Accept(std::chrono::milliseconds timeout);

  std::uint16_t port() const { return port_; }

  /// Stops accepting; safe from another thread while Accept blocks.
  void Close();

 private:
  TcpListener(int fd, std::uint16_t port) : fd_(fd), port_(port) {}
  int fd_;
  std::uint16_t port_;
};

/// Connects to 127.0.0.1:`port`, waiting at most `timeout`.
Result<ConnectionPtr> TcpDial(std::uint16_t port,
                              std::chrono::milliseconds timeout);

}  // namespace setrec

#endif  // SETREC_NET_TCP_H_
