#include "net/slowlog.h"

#include <fstream>
#include <utility>

namespace setrec {

namespace {
constexpr std::uint64_t kDefaultMaxBytes = std::uint64_t{1} << 20;  // 1 MiB
}  // namespace

SlowRequestLog::SlowRequestLog(std::string path, std::uint64_t max_bytes)
    : path_(std::move(path)),
      max_bytes_(max_bytes == 0 ? kDefaultMaxBytes : max_bytes) {
  // Resume an existing file's size so the budget survives reopen.
  std::ifstream in(path_, std::ios::binary | std::ios::ate);
  if (in) size_ = static_cast<std::uint64_t>(in.tellg());
}

Status SlowRequestLog::Append(const std::string& json_line) {
  const std::uint64_t need = json_line.size() + 1;  // trailing newline
  std::lock_guard<std::mutex> lock(mu_);
  if (need > max_bytes_) {
    ++dropped_;
    return Status::InvalidArgument("slow-log entry exceeds the byte budget");
  }
  const bool wrap = size_ + need > max_bytes_;
  std::ofstream out(path_, wrap ? std::ios::binary | std::ios::trunc
                                : std::ios::binary | std::ios::app);
  if (!out) {
    return Status::Internal("slow log open failed: " + path_);
  }
  if (wrap) {
    ++wraps_;
    size_ = 0;
  }
  out << json_line << "\n";
  out.flush();
  if (!out) {
    return Status::Internal("slow log write failed: " + path_);
  }
  size_ += need;
  ++entries_;
  return Status::OK();
}

std::uint64_t SlowRequestLog::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

std::uint64_t SlowRequestLog::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::uint64_t SlowRequestLog::wraps() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wraps_;
}

}  // namespace setrec
