#ifndef SETREC_NET_REPLICA_H_
#define SETREC_NET_REPLICA_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "core/instance.h"
#include "net/frame.h"
#include "net/message.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace setrec {

/// A WAL-shipping follower: pulls the leader's committed log over the
/// request protocol and replays it through the *same* path recovery uses
/// (ParseDelta + ApplyDelta), so a follower's state is byte-for-byte what
/// the leader would recover after a crash — the tests assert bit-identical
/// InstanceToText.
///
/// Protocol per TailOnce() round:
///
///   1. send `pull` with from = applied + 1 (and a batch cap); the leader
///      streams kWalRecord frames — request id carries the record's WAL
///      sequence, the payload is the record's delta text — and finishes
///      with a kResponse trailer carrying its last committed sequence;
///   2. each record is applied under the state mutex after a contiguity
///      check (sequence == applied + 1; lower = already applied, skipped);
///   3. a trailer of kNotFound means the leader checkpointed past our
///      position (the WAL records we need were truncated): the follower
///      resyncs — fetches `snapshot`, installs it, and resumes tailing
///      from the snapshot's sequence. A non-contiguous or unparsable
///      record (stream corruption below the CRC's radar) forces the same
///      resync, never a divergent apply.
///
/// Reads (Read()) are served at whatever sequence is applied; the kResponse
/// trailer's leader sequence is retained so readers — and the failover
/// client — can see the current replication lag.
///
/// TailOnce() is the deterministic unit the tests drive directly;
/// StartTailing() wraps it in a background thread for live deployments.
class FollowerReplica {
 public:
  struct Options {
    /// Tenant to replicate (the leader serves one store per tenant).
    std::string tenant;
    /// Dials a fresh connection to the leader (called on first use and
    /// after any connection failure).
    Dialer dial;
    const Schema* schema = nullptr;
    /// Records requested per pull round.
    std::uint64_t pull_batch = 256;
    /// Per-frame receive allowance while pulling.
    std::chrono::milliseconds recv_timeout{1000};
    /// Network-plane fault injector for this endpoint (may be null).
    FaultInjector* injector = nullptr;
    MetricsRegistry* metrics = nullptr;
    Tracer* tracer = nullptr;
  };

  static Result<std::unique_ptr<FollowerReplica>> Create(Options options);
  ~FollowerReplica();
  FollowerReplica(const FollowerReplica&) = delete;
  FollowerReplica& operator=(const FollowerReplica&) = delete;

  /// One pull-and-apply round. Returns OK when the round completed (even
  /// if zero records arrived — being caught up is success); a connection
  /// or protocol failure marks the replica unhealthy and returns the
  /// error. Safe to call from one thread at a time (the background tailer
  /// or a test, not both).
  Status TailOnce();

  /// Fetches the leader's current snapshot and installs it, replacing
  /// local state; tailing resumes from the snapshot's sequence. Called
  /// automatically when a pull reports truncated history.
  Status Resync();

  /// Starts/stops a background thread calling TailOnce() every `interval`
  /// (errors are absorbed into healthy()).
  void StartTailing(std::chrono::milliseconds interval);
  void StopTailing();

  /// Copy of the replicated state with the sequences describing it (both
  /// out-params optional). `leader` is the leader's last committed
  /// sequence as of the most recent completed pull; `leader - applied` is
  /// the replication lag a failover client screens on.
  Instance Read(std::uint64_t* applied = nullptr,
                std::uint64_t* leader = nullptr) const;

  std::uint64_t applied_sequence() const;
  std::uint64_t leader_sequence() const;
  /// False until the first successful round, and after any failed one.
  bool healthy() const { return healthy_.load(std::memory_order_relaxed); }
  std::uint64_t resyncs() const {
    return resyncs_.load(std::memory_order_relaxed);
  }

 private:
  explicit FollowerReplica(Options options);

  /// Ensures connected_ holds a live framed connection (dialing if needed).
  Status EnsureConnected();
  /// Sends `request` and returns the kResponse trailer, handing every
  /// kWalRecord frame seen on the way to `on_record` whole — the frame
  /// carries the record's sequence (request id), payload, and the trace
  /// context of the commit that produced it.
  Result<Response> RoundTrip(
      const Request& request,
      const std::function<Status(const Frame&)>& on_record);
  /// Replays one shipped record. When the record carries a trace context,
  /// the replay span joins that family ("net/replay" under the leader's
  /// origin span) — the cross-process tail of the write's timeline.
  Status ApplyRecord(const Frame& record);
  /// Publishes the follower-side per-tenant replication gauges
  /// (tenant.replication.lag / tenant.replication.ms_since_apply).
  void PublishLag();

  Options options_;
  std::unique_ptr<FramedConnection> conn_;
  std::uint64_t next_request_id_ = 1;

  mutable std::mutex state_mu_;
  Instance instance_;           // guarded by state_mu_
  std::uint64_t applied_ = 0;   // guarded by state_mu_
  std::atomic<std::uint64_t> leader_{0};
  std::atomic<bool> healthy_{false};
  std::atomic<std::uint64_t> resyncs_{0};
  /// Steady-clock ns of the most recent applied record (0 = none yet);
  /// feeds the ms_since_apply staleness gauge.
  std::atomic<std::uint64_t> last_apply_ns_{0};

  std::thread tailer_;
  std::atomic<bool> stop_tailing_{false};
};

}  // namespace setrec

#endif  // SETREC_NET_REPLICA_H_
