#include "net/server.h"

#include <algorithm>
#include <filesystem>
#include <sstream>
#include <utility>

#include "incremental/view_cache.h"
#include "obs/explain.h"
#include "obs/json_escape.h"
#include "objrel/encoding.h"
#include "relational/evaluator.h"
#include "sql/engine.h"
#include "store/wal.h"
#include "text/parser.h"
#include "text/printer.h"

namespace setrec {

namespace {

Response ErrorResponse(const Status& status) {
  Response response;
  response.code = status.code();
  response.message = SanitizeHeaderValue(status.message());
  return response;
}

Response OkResponse() { return Response{}; }

/// Renders a query result deterministically: one line per tuple in sorted
/// order, values as ClassName(index) — the same object-literal spelling the
/// text format uses, so results are directly comparable across servers.
std::string RenderRelation(const Relation& relation, const Schema& schema) {
  std::string out;
  for (const Tuple* tuple : relation.SortedTuples()) {
    for (std::size_t i = 0; i < tuple->arity(); ++i) {
      if (i != 0) out.push_back(' ');
      const ObjectId o = tuple->at(i);
      out.append(schema.class_name(o.class_id()));
      out.push_back('(');
      out.append(std::to_string(o.index()));
      out.push_back(')');
    }
    out.push_back('\n');
  }
  return out;
}

Result<std::uint64_t> ParamU64(const Request& request, const char* name,
                               std::uint64_t fallback) {
  const auto it = request.params.find(name);
  if (it == request.params.end()) return fallback;
  std::uint64_t value = 0;
  if (it->second.empty()) {
    return Status::InvalidArgument(std::string("param ") + name +
                                   ": empty number");
  }
  for (char c : it->second) {
    if (c < '0' || c > '9' || value > (~std::uint64_t{0} - 9) / 10) {
      return Status::InvalidArgument(std::string("param ") + name +
                                     ": bad number");
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

}  // namespace

/// One tenant: its store (or replica), and the admission gate. The gate is
/// the tenant's *only* shared mutable state, so the lock never nests with
/// the store's own mutex.
struct Server::Tenant {
  TenantConfig config;
  /// Created before the store so DurableStore::Open can prime it; fed by
  /// the store's post-fsync publication from then on. Null when
  /// incremental_views is off or the tenant is replica-backed.
  std::unique_ptr<ViewCache> view_cache;
  std::unique_ptr<DurableStore> store;
  FollowerReplica* replica = nullptr;

  std::mutex mu;
  std::condition_variable cv;
  std::size_t active = 0;   // guarded by mu
  std::size_t waiting = 0;  // guarded by mu

  /// Per-tenant instruments, resolved once at tenant creation (labeled
  /// series of the shared registry — see MetricsRegistry::*Labeled); all
  /// null when the server runs without metrics.
  struct Telemetry {
    Histogram* update_ns = nullptr;      // tenant.update_ns{tenant=...}
    Histogram* delta_ns = nullptr;       // tenant.delta_ns{tenant=...}
    Histogram* query_ns = nullptr;       // tenant.query_ns{tenant=...}
    Histogram* queue_wait_ns = nullptr;  // tenant.queue_wait_ns{tenant=...}
    Counter* shed = nullptr;             // tenant.shed{tenant=...}
    Counter* deadline_miss = nullptr;    // tenant.deadline_miss{tenant=...}
    Gauge* queue_depth = nullptr;        // tenant.queue_depth{tenant=...}
    Gauge* active_gauge = nullptr;       // tenant.active{tenant=...}
    /// Leader-side replication lag: newest local sequence minus the last
    /// sequence the most recent pull shipped (tenant.replication.
    /// follower_lag{tenant=...}).
    Gauge* follower_lag = nullptr;
  } telemetry;

  /// Origin of each durable commit: sequence → the request family that
  /// produced it, so HandlePull can stamp shipped WAL records with the
  /// trace that wrote them and a follower's replay joins the same family.
  /// Bounded (kCommitTraceCap, oldest evicted): replication of a
  /// checkpointed-away or evicted sequence simply ships untraced.
  struct CommitTrace {
    std::uint64_t trace_id = 0;
    std::uint64_t origin_span = 0;
  };
  std::mutex trace_mu;
  std::map<std::uint64_t, CommitTrace> commit_traces;  // guarded by trace_mu

  /// Bounded slow-request capture; null when the threshold is zero or the
  /// tenant has no local directory (replica-backed).
  std::unique_ptr<SlowRequestLog> slowlog;

  void RecordCommitTrace(std::uint64_t sequence, const TraceContext& trace) {
    static constexpr std::size_t kCommitTraceCap = 512;
    if (!trace.active() || sequence == 0) return;
    std::lock_guard<std::mutex> lock(trace_mu);
    commit_traces[sequence] = CommitTrace{trace.trace_id, trace.parent_span};
    while (commit_traces.size() > kCommitTraceCap) {
      commit_traces.erase(commit_traces.begin());
    }
  }

  void InitTelemetry(MetricsRegistry* metrics) {
    if (metrics == nullptr) return;
    const std::string& name = config.name;
    telemetry.update_ns =
        &metrics->HistogramLabeled("tenant.update_ns", "tenant", name);
    telemetry.delta_ns =
        &metrics->HistogramLabeled("tenant.delta_ns", "tenant", name);
    telemetry.query_ns =
        &metrics->HistogramLabeled("tenant.query_ns", "tenant", name);
    telemetry.queue_wait_ns =
        &metrics->HistogramLabeled("tenant.queue_wait_ns", "tenant", name);
    telemetry.shed = &metrics->CounterLabeled("tenant.shed", "tenant", name);
    telemetry.deadline_miss =
        &metrics->CounterLabeled("tenant.deadline_miss", "tenant", name);
    telemetry.queue_depth =
        &metrics->GaugeLabeled("tenant.queue_depth", "tenant", name);
    telemetry.active_gauge =
        &metrics->GaugeLabeled("tenant.active", "tenant", name);
    telemetry.follower_lag = &metrics->GaugeLabeled(
        "tenant.replication.follower_lag", "tenant", name);
  }
};

Server::Server(ServerOptions options, std::unique_ptr<ThreadPool> owned_pool)
    : options_(std::move(options)),
      owned_pool_(std::move(owned_pool)),
      pool_(options_.pool != nullptr ? options_.pool : owned_pool_.get()) {}

Server::~Server() { Drain(); }

Result<std::unique_ptr<Server>> Server::Create(
    ServerOptions options, std::vector<TenantConfig> tenants) {
  if (options.schema == nullptr) {
    return Status::InvalidArgument("server: schema is required");
  }
  std::unique_ptr<ThreadPool> owned;
  if (options.pool == nullptr) {
    owned = std::make_unique<ThreadPool>(
        std::max<std::size_t>(1, options.own_pool_workers));
  }
  std::unique_ptr<Server> server(
      new Server(std::move(options), std::move(owned)));
  for (TenantConfig& config : tenants) {
    if (config.name.empty()) {
      return Status::InvalidArgument("server: tenant name must not be empty");
    }
    auto tenant = std::make_unique<Tenant>();
    const std::string dir =
        (std::filesystem::path(server->options_.data_dir) / config.name)
            .string();
    tenant->config = std::move(config);
    // The store inherits the server's sinks unless the config wired its
    // own: store/commit and wal/fsync spans then land on the *same* tracer
    // as the session's net/request span, joining the request's family.
    if (tenant->config.store_options.tracer == nullptr) {
      tenant->config.store_options.tracer = server->options_.tracer;
    }
    if (tenant->config.store_options.metrics == nullptr) {
      tenant->config.store_options.metrics = server->options_.metrics;
    }
    if (tenant->config.incremental_views) {
      if (tenant->config.store_options.view_cache != nullptr) {
        return Status::InvalidArgument(
            "server: store_options.view_cache is server-managed; leave null");
      }
      ViewCacheOptions cache_options;
      cache_options.metrics = server->options_.metrics;
      cache_options.tracer = server->options_.tracer;
      tenant->view_cache = std::make_unique<ViewCache>(
          server->options_.schema, cache_options);
      tenant->config.store_options.view_cache = tenant->view_cache.get();
    }
    SETREC_ASSIGN_OR_RETURN(
        tenant->store,
        DurableStore::Open(dir, server->options_.schema,
                           tenant->config.store_options));
    tenant->InitTelemetry(server->options_.metrics);
    if (tenant->config.slow_request_threshold >
        std::chrono::nanoseconds::zero()) {
      tenant->slowlog = std::make_unique<SlowRequestLog>(
          (std::filesystem::path(dir) / "slowlog.jsonl").string(),
          tenant->config.slowlog_max_bytes);
    }
    const std::string name = tenant->config.name;
    server->tenants_.emplace(name, std::move(tenant));
  }
  return server;
}

Status Server::ServeReplica(const std::string& tenant_name,
                            FollowerReplica* replica) {
  if (replica == nullptr) {
    return Status::InvalidArgument("server: replica must not be null");
  }
  std::lock_guard<std::mutex> lock(tenants_mu_);
  auto [it, inserted] =
      tenants_.emplace(tenant_name, std::make_unique<Tenant>());
  if (!inserted) {
    return Status::AlreadyExists("server: tenant '" + tenant_name +
                                 "' already exists");
  }
  it->second->config.name = tenant_name;
  it->second->replica = replica;
  it->second->InitTelemetry(options_.metrics);
  return Status::OK();
}

Server::Tenant* Server::FindTenant(const std::string& name) {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  const auto it = tenants_.find(name);
  return it == tenants_.end() ? nullptr : it->second.get();
}

DurableStore* Server::store(const std::string& tenant) {
  Tenant* t = FindTenant(tenant);
  return t == nullptr ? nullptr : t->store.get();
}

std::size_t Server::active_sessions() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return active_sessions_;
}

bool Server::draining() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return draining_;
}

void Server::Serve(ConnectionPtr conn) {
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    if (draining_) {
      conn->Close();
      return;
    }
    ++active_sessions_;
  }
  if (options_.metrics != nullptr) {
    options_.metrics->GaugeNamed("net.sessions").Add(1);
  }
  // std::function requires a copyable closure; the shared_ptr wrapper
  // carries the unique_ptr until the task runs and takes sole ownership.
  auto holder = std::make_shared<ConnectionPtr>(std::move(conn));
  pool_->Post([this, holder] { SessionLoop(std::move(*holder)); });
}

void Server::Drain() {
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    if (draining_) {
      // Already draining: still wait for stragglers below.
    }
    draining_ = true;
  }
  // Wake every queued request so it sheds instead of waiting out its
  // deadline against a server that will never admit it.
  {
    std::lock_guard<std::mutex> lock(tenants_mu_);
    for (auto& [name, tenant] : tenants_) {
      std::lock_guard<std::mutex> tenant_lock(tenant->mu);
      tenant->cv.notify_all();
    }
  }
  std::unique_lock<std::mutex> lock(sessions_mu_);
  sessions_cv_.wait(lock, [this] { return active_sessions_ == 0; });
}

void Server::SessionLoop(ConnectionPtr conn) {
  TraceSpan session_span(options_.tracer, "net/session");
  FramedConnection framed(std::move(conn), options_.injector,
                          options_.metrics);
  std::uint64_t last_id = 0;
  bool has_cached = false;
  Frame cached_response;

  for (;;) {
    Result<Frame> in = framed.RecvFrame(options_.recv_timeout);
    if (!in.ok()) {
      if (in.status().code() == StatusCode::kDeadlineExceeded) {
        if (!draining()) continue;  // idle tick; keep serving
        Frame goodbye;
        goodbye.type = FrameType::kGoodbye;
        (void)framed.SendFrame(goodbye);
        break;
      }
      if (in.status().code() == StatusCode::kCorruptedLog) {
        if (options_.metrics != nullptr) {
          options_.metrics->CounterNamed("net.protocol_errors").Add(1);
        }
        if (options_.recorder != nullptr) {
          options_.recorder->Record(
              FlightRecorder::EventKind::kStatus, "net/session-corrupt",
              static_cast<std::uint64_t>(in.status().code()), last_id,
              in.status().message());
        }
      }
      break;  // peer closed, injected disconnect, or poisoned stream
    }
    if (in->type == FrameType::kGoodbye) break;
    if (in->type != FrameType::kRequest) {
      if (options_.metrics != nullptr) {
        options_.metrics->CounterNamed("net.protocol_errors").Add(1);
      }
      break;
    }
    // At-most-once per connection: a replayed id gets the cached response
    // (the client retried because our response was lost), a *regressing*
    // id is a protocol violation.
    if (in->request_id == last_id && has_cached) {
      if (!framed.SendFrame(cached_response).ok()) break;
      continue;
    }
    if (in->request_id <= last_id) {
      Frame reply;
      reply.type = FrameType::kResponse;
      reply.request_id = in->request_id;
      reply.payload = EncodeResponse(ErrorResponse(Status::InvalidArgument(
          "request id went backwards; ids must increase per session")));
      (void)framed.SendFrame(reply);
      if (options_.metrics != nullptr) {
        options_.metrics->CounterNamed("net.protocol_errors").Add(1);
      }
      break;
    }

    // Adopt the frame's trace context for this request: while installed,
    // every span this thread (and its forks) opens joins the client's
    // family, and the request span records the client-side span as its
    // remote parent. Untraced frames install nothing.
    const TraceContext wire_trace{in->trace_id, in->trace_parent,
                                  in->sampled};
    ScopedTraceContext trace_scope(options_.tracer, wire_trace);
    TraceSpan request_span(options_.tracer, "net/request");
    // Downstream the family travels with the *local* request span as
    // parent: commits record it as their origin, replication continues it.
    const TraceContext trace{in->trace_id, request_span.id(), in->sampled};
    const auto started = std::chrono::steady_clock::now();
    Response response;
    Result<Request> request = DecodeRequest(in->payload);
    if (!request.ok()) {
      if (options_.metrics != nullptr) {
        options_.metrics->CounterNamed("net.protocol_errors").Add(1);
      }
      response = ErrorResponse(request.status());
    } else {
      if (options_.recorder != nullptr) {
        options_.recorder->Record(FlightRecorder::EventKind::kNote,
                                  "net/request", in->request_id, 0,
                                  request->op);
      }
      response = Dispatch(*request, framed, trace);
    }
    if (options_.metrics != nullptr) {
      options_.metrics->CounterNamed("net.requests").Add(1);
      options_.metrics->HistogramNamed("net.request_ns")
          .Observe(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - started)
                  .count()));
    }
    Frame reply;
    reply.type = FrameType::kResponse;
    reply.request_id = in->request_id;
    reply.payload = EncodeResponse(response);
    last_id = in->request_id;
    cached_response = reply;
    has_cached = true;
    // End (and flush) the request span *before* the reply leaves: once the
    // client observes the response, every server-side span of the family is
    // visible in the tracer — readers never see a half-recorded family.
    // The send itself is framing I/O, not request work.
    request_span.End();
    if (!framed.SendFrame(reply).ok()) break;
  }

  framed.Close();
  if (options_.metrics != nullptr) {
    options_.metrics->GaugeNamed("net.sessions").Add(-1);
  }
  {
    // Notify under the mutex: a Drain()er woken by the final decrement may
    // destroy this cv the instant it can re-acquire the lock, so the
    // broadcast must complete before we release it.
    std::lock_guard<std::mutex> lock(sessions_mu_);
    --active_sessions_;
    sessions_cv_.notify_all();
  }
}

Response Server::Dispatch(const Request& request, FramedConnection& framed,
                          const TraceContext& trace) {
  if (request.op == "stats") return HandleStats(request);
  Tenant* tenant = FindTenant(request.tenant);
  if (tenant == nullptr) {
    return ErrorResponse(
        Status::NotFound("unknown tenant '" +
                         SanitizeHeaderValue(request.tenant) + "'"));
  }
  const std::chrono::milliseconds allowance =
      request.deadline_ms != 0
          ? std::chrono::milliseconds(request.deadline_ms)
          : tenant->config.default_deadline;
  const auto deadline = std::chrono::steady_clock::now() + allowance;

  if (request.op == "ping") return HandlePing(*tenant);
  if (request.op == "pull") return HandlePull(*tenant, request, framed);
  if (request.op == "snapshot") return HandleSnapshot(*tenant);
  if (request.op == "explain") return HandleExplain(*tenant, request);

  if (request.op == "update" || request.op == "delta" ||
      request.op == "query") {
    const auto started = std::chrono::steady_clock::now();
    bool admitted = false;
    Response gate = Admit(*tenant, deadline, &admitted);
    if (!admitted) {
      if (gate.code == StatusCode::kDeadlineExceeded &&
          tenant->telemetry.deadline_miss != nullptr) {
        tenant->telemetry.deadline_miss->Add(1);
      }
      return gate;
    }
    Response response;
    {
      TraceSpan span(options_.tracer, "net/execute");
      if (request.op == "update") {
        response = HandleUpdate(*tenant, request, deadline, trace);
      } else if (request.op == "delta") {
        response = HandleDelta(*tenant, request, deadline, trace);
      } else {
        response = HandleQuery(*tenant, request, deadline, trace);
      }
    }
    Release(*tenant);
    const auto latency = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now() - started);
    Tenant::Telemetry& t = tenant->telemetry;
    Histogram* op_ns = request.op == "update"  ? t.update_ns
                       : request.op == "delta" ? t.delta_ns
                                               : t.query_ns;
    if (op_ns != nullptr) {
      op_ns->Observe(static_cast<std::uint64_t>(latency.count()));
    }
    if (response.code == StatusCode::kDeadlineExceeded &&
        t.deadline_miss != nullptr) {
      t.deadline_miss->Add(1);
    }
    if (tenant->slowlog != nullptr &&
        latency >= tenant->config.slow_request_threshold) {
      CaptureSlowRequest(*tenant, request, trace, latency);
    }
    return response;
  }
  return ErrorResponse(Status::Unimplemented(
      "unknown op '" + SanitizeHeaderValue(request.op) + "'"));
}

Response Server::Admit(Tenant& tenant,
                       std::chrono::steady_clock::time_point deadline,
                       bool* admitted) {
  TraceSpan span(options_.tracer, "net/admission");
  Tenant::Telemetry& t = tenant.telemetry;
  const auto arrived = std::chrono::steady_clock::now();
  const auto observe_wait = [&] {
    if (t.queue_wait_ns != nullptr) {
      t.queue_wait_ns->Observe(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - arrived)
              .count()));
    }
  };
  *admitted = false;
  const auto shed = [&](std::size_t queue_depth) {
    if (options_.metrics != nullptr) {
      options_.metrics->CounterNamed("net.shed").Add(1);
    }
    if (t.shed != nullptr) t.shed->Add(1);
    observe_wait();
    Response response = ErrorResponse(Status::ResourceExhausted(
        "tenant '" + tenant.config.name + "' is saturated"));
    // The hint grows with the pile-up: the deeper the queue at shed time,
    // the further away clients are pushed.
    response.retry_after_ms =
        options_.suggested_backoff_ms * (1 + queue_depth);
    return response;
  };
  const auto admit = [&] {
    ++tenant.active;
    if (t.active_gauge != nullptr) {
      t.active_gauge->Set(static_cast<std::int64_t>(tenant.active));
    }
    observe_wait();
    *admitted = true;
    return OkResponse();
  };
  const auto set_depth = [&] {
    if (t.queue_depth != nullptr) {
      t.queue_depth->Set(static_cast<std::int64_t>(tenant.waiting));
    }
  };

  std::unique_lock<std::mutex> lock(tenant.mu);
  if (draining()) return shed(tenant.waiting);
  if (tenant.active < tenant.config.max_concurrency) return admit();
  if (tenant.waiting >= tenant.config.max_queue) return shed(tenant.waiting);
  ++tenant.waiting;
  set_depth();
  while (tenant.active >= tenant.config.max_concurrency) {
    if (tenant.cv.wait_until(lock, deadline) == std::cv_status::timeout) {
      --tenant.waiting;
      set_depth();
      observe_wait();
      return ErrorResponse(Status::DeadlineExceeded(
          "deadline expired in tenant '" + tenant.config.name +
          "' admission queue"));
    }
    if (draining()) {
      --tenant.waiting;
      set_depth();
      return shed(tenant.waiting);
    }
  }
  --tenant.waiting;
  set_depth();
  return admit();
}

void Server::Release(Tenant& tenant) {
  {
    std::lock_guard<std::mutex> lock(tenant.mu);
    --tenant.active;
    if (tenant.telemetry.active_gauge != nullptr) {
      tenant.telemetry.active_gauge->Set(
          static_cast<std::int64_t>(tenant.active));
    }
  }
  tenant.cv.notify_one();
}

ExecContext::Limits Server::RequestLimits(
    const Tenant& tenant,
    std::chrono::steady_clock::time_point deadline) const {
  ExecContext::Limits limits = tenant.config.store_options.limits;
  const auto now = std::chrono::steady_clock::now();
  const auto remaining =
      deadline > now
          ? std::chrono::duration_cast<std::chrono::nanoseconds>(deadline -
                                                                 now)
          : std::chrono::nanoseconds(1);
  // The statement's clock allowance is the *smaller* of the tenant budget
  // and what is left of the request deadline (queue time already spent
  // counts against the client's allowance).
  if (limits.timeout == std::chrono::nanoseconds::zero() ||
      limits.timeout > remaining) {
    limits.timeout = remaining;
  }
  return limits;
}

Response Server::HandlePing(Tenant& tenant) {
  Response response = OkResponse();
  if (tenant.replica != nullptr) {
    std::uint64_t applied = 0;
    std::uint64_t leader = 0;
    (void)tenant.replica->Read(&applied, &leader);
    response.applied_sequence = applied;
    response.leader_sequence = leader;
  } else if (tenant.store != nullptr) {
    response.applied_sequence = tenant.store->last_sequence();
    response.leader_sequence = response.applied_sequence;
  }
  return response;
}

Response Server::HandleUpdate(
    Tenant& tenant, const Request& request,
    std::chrono::steady_clock::time_point deadline,
    const TraceContext& trace) {
  if (tenant.store == nullptr) {
    return ErrorResponse(Status::FailedPrecondition(
        "tenant '" + tenant.config.name + "' is a read-only replica"));
  }
  const auto property_it = request.params.find("property");
  if (property_it == request.params.end()) {
    return ErrorResponse(
        Status::InvalidArgument("update: missing 'property' param"));
  }
  Result<PropertyId> property =
      options_.schema->FindProperty(property_it->second);
  if (!property.ok()) return ErrorResponse(property.status());
  Result<ExprPtr> query = ParseExpression(request.body);
  if (!query.ok()) return ErrorResponse(query.status());

  const ExprPtr& receiver_query = *query;
  const PropertyId prop = *property;
  Status committed = tenant.store->Commit(
      [&](Instance& instance, ExecContext& ctx,
          const CommitHook& hook) -> Status {
        // Fan-outs forked from this context must stay in the request's
        // family even on pool threads where no context is installed.
        if (trace.active()) ctx.set_trace_id(trace.trace_id);
        // The cache serves phase one (receiver set) when present; the
        // store's own hook publication keeps it in lockstep afterwards.
        return SetOrientedUpdateInPlace(instance, prop, receiver_query, ctx,
                                        hook, tenant.view_cache.get());
      },
      RequestLimits(tenant, deadline));
  if (!committed.ok()) return ErrorResponse(committed);
  Response response = OkResponse();
  response.applied_sequence = tenant.store->last_sequence();
  response.leader_sequence = response.applied_sequence;
  tenant.RecordCommitTrace(response.applied_sequence, trace);
  return response;
}

Response Server::HandleDelta(Tenant& tenant, const Request& request,
                             std::chrono::steady_clock::time_point deadline,
                             const TraceContext& trace) {
  if (tenant.store == nullptr) {
    return ErrorResponse(Status::FailedPrecondition(
        "tenant '" + tenant.config.name + "' is a read-only replica"));
  }
  Result<InstanceDelta> delta =
      ParseDelta(request.body, options_.schema);
  if (!delta.ok()) return ErrorResponse(delta.status());
  const InstanceDelta& parsed = *delta;
  Status committed = tenant.store->Commit(
      [&](Instance& instance, ExecContext& ctx,
          const CommitHook& hook) -> Status {
        if (trace.active()) ctx.set_trace_id(trace.trace_id);
        SETREC_RETURN_IF_ERROR(ctx.CheckPoint("net/apply-delta"));
        Instance before = instance;
        Status applied = ApplyDelta(instance, parsed);
        if (applied.ok()) applied = hook(before, instance);
        if (!applied.ok()) {
          instance = std::move(before);
          return applied;
        }
        return Status::OK();
      },
      RequestLimits(tenant, deadline));
  if (!committed.ok()) return ErrorResponse(committed);
  Response response = OkResponse();
  response.applied_sequence = tenant.store->last_sequence();
  response.leader_sequence = response.applied_sequence;
  tenant.RecordCommitTrace(response.applied_sequence, trace);
  return response;
}

Response Server::HandleQuery(Tenant& tenant, const Request& request,
                             std::chrono::steady_clock::time_point deadline,
                             const TraceContext& trace) {
  Result<ExprPtr> query = ParseExpression(request.body);
  if (!query.ok()) return ErrorResponse(query.status());

  ExecContext ctx(RequestLimits(tenant, deadline));
  ctx.set_fault_injector(tenant.config.store_options.injector);
  ctx.set_tracer(options_.tracer);
  ctx.set_metrics(options_.metrics);
  ctx.set_recorder(options_.recorder);
  if (trace.active()) ctx.set_trace_id(trace.trace_id);

  std::uint64_t applied = 0;
  std::uint64_t leader = 0;
  if (tenant.view_cache != nullptr && tenant.store != nullptr) {
    // Leader fast path: answer from the incrementally-maintained view,
    // governed by the same request context as from-scratch evaluation. The
    // sequence is read *before* the view, so a commit racing the read can
    // only make the response understate its own freshness. A governance
    // stop (deadline, budget, cancellation) is the request's final answer;
    // any other cache error (unprimed after a fault, unsupported
    // expression) falls through to from-scratch evaluation below.
    applied = tenant.store->last_sequence();
    Result<std::shared_ptr<const Relation>> view =
        tenant.view_cache->Query(*query, &ctx);
    if (view.ok()) {
      Response response = OkResponse();
      response.body = RenderRelation(**view, *options_.schema);
      response.applied_sequence = applied;
      response.leader_sequence = applied;
      return response;
    }
    if (IsGovernanceError(view.status())) return ErrorResponse(view.status());
  }
  Instance state(options_.schema);
  if (tenant.replica != nullptr) {
    state = tenant.replica->Read(&applied, &leader);
  } else if (tenant.store != nullptr) {
    state = tenant.store->SnapshotState(&applied);
    leader = applied;
  } else {
    return ErrorResponse(Status::Internal("tenant has no backing state"));
  }
  Result<Database> database = EncodeInstance(state);
  if (!database.ok()) return ErrorResponse(database.status());

  Result<Relation> result = Evaluate(*query, *database, ctx);
  if (!result.ok()) return ErrorResponse(result.status());

  Response response = OkResponse();
  response.body = RenderRelation(*result, *options_.schema);
  response.applied_sequence = applied;
  response.leader_sequence = leader;
  return response;
}

Response Server::HandleExplain(Tenant& tenant, const Request& request) {
  Result<ExprPtr> query = ParseExpression(request.body);
  if (!query.ok()) return ErrorResponse(query.status());
  Result<Catalog> catalog = EncodeCatalog(*options_.schema);
  if (!catalog.ok()) return ErrorResponse(catalog.status());
  Result<ExplainPlan> plan = ExplainExpression(*query, *catalog);
  if (!plan.ok()) return ErrorResponse(plan.status());
  Response response = OkResponse();
  response.body = plan->ToText();
  if (tenant.replica != nullptr) {
    std::uint64_t applied = 0;
    std::uint64_t leader = 0;
    (void)tenant.replica->Read(&applied, &leader);
    response.applied_sequence = applied;
    response.leader_sequence = leader;
  } else if (tenant.store != nullptr) {
    response.applied_sequence = tenant.store->last_sequence();
    response.leader_sequence = response.applied_sequence;
  }
  return response;
}

Response Server::HandlePull(Tenant& tenant, const Request& request,
                            FramedConnection& framed) {
  TraceSpan span(options_.tracer, "net/pull");
  if (tenant.store == nullptr) {
    return ErrorResponse(Status::FailedPrecondition(
        "tenant '" + tenant.config.name +
        "' cannot serve replication (not a leader)"));
  }
  Result<std::uint64_t> from = ParamU64(request, "from", 1);
  if (!from.ok()) return ErrorResponse(from.status());
  Result<std::uint64_t> max_records = ParamU64(request, "max", 256);
  if (!max_records.ok()) return ErrorResponse(max_records.status());

  // Read the leader's own WAL — the replication stream IS the recovery
  // log, bit for bit. Reading a prefix while commits append is safe: a
  // concurrently half-written tail parses as torn and simply isn't
  // shipped this round.
  const std::string wal_path =
      (std::filesystem::path(tenant.store->dir()) / "wal.log").string();
  Result<WalReplay> replay = ReadWal(wal_path);
  if (!replay.ok()) return ErrorResponse(replay.status());
  const std::uint64_t leader_sequence = tenant.store->last_sequence();

  const std::uint64_t first_available =
      replay->records.empty() ? leader_sequence + 1
                              : replay->records.front().sequence;
  if (*from < first_available && *from <= leader_sequence) {
    // The follower's position was checkpointed away: its next record no
    // longer exists in the log. Only the snapshot can bridge the gap.
    Response response = ErrorResponse(Status::NotFound(
        "log history starts at sequence " +
        std::to_string(first_available) + "; resync from snapshot"));
    response.leader_sequence = leader_sequence;
    return response;
  }

  std::uint64_t shipped = 0;
  std::uint64_t last_shipped = 0;
  for (const WalRecord& record : replay->records) {
    if (record.sequence < *from) continue;
    if (shipped >= *max_records) break;
    Frame frame;
    frame.type = FrameType::kWalRecord;
    frame.request_id = record.sequence;
    frame.payload = record.payload;
    // Stamp the record with the family that committed it (if still in the
    // bounded origin map), so the follower's replay span joins the same
    // trace as the client call that wrote this sequence.
    {
      std::lock_guard<std::mutex> trace_lock(tenant.trace_mu);
      const auto origin = tenant.commit_traces.find(record.sequence);
      if (origin != tenant.commit_traces.end()) {
        frame.trace_id = origin->second.trace_id;
        frame.trace_parent = origin->second.origin_span;
        frame.sampled = true;
      }
    }
    Status sent = framed.SendFrame(frame);
    if (!sent.ok()) return ErrorResponse(sent);
    ++shipped;
    last_shipped = record.sequence;
    if (options_.metrics != nullptr) {
      options_.metrics->CounterNamed("net.replication.records_shipped")
          .Add(1);
    }
  }
  // Leader-side lag: how far the puller will still trail after this batch.
  if (tenant.telemetry.follower_lag != nullptr) {
    const std::uint64_t caught_up_to =
        last_shipped != 0 ? last_shipped : (*from > 0 ? *from - 1 : 0);
    tenant.telemetry.follower_lag->Set(
        leader_sequence > caught_up_to
            ? static_cast<std::int64_t>(leader_sequence - caught_up_to)
            : 0);
  }
  Response response = OkResponse();
  response.applied_sequence = last_shipped;
  response.leader_sequence = leader_sequence;
  return response;
}

Response Server::HandleSnapshot(Tenant& tenant) {
  TraceSpan span(options_.tracer, "net/snapshot");
  if (tenant.store == nullptr) {
    return ErrorResponse(Status::FailedPrecondition(
        "tenant '" + tenant.config.name +
        "' cannot serve snapshots (not a leader)"));
  }
  std::uint64_t sequence = 0;
  const Instance state = tenant.store->SnapshotState(&sequence);
  Response response = OkResponse();
  response.body =
      "sequence " + std::to_string(sequence) + "\n" + InstanceToText(state);
  response.applied_sequence = sequence;
  response.leader_sequence = sequence;
  return response;
}

Response Server::HandleStats(const Request& request) {
  Response response = OkResponse();
  if (options_.metrics != nullptr) {
    const auto format = request.params.find("format");
    std::ostringstream out;
    if (format != request.params.end() && format->second == "prometheus") {
      options_.metrics->WritePrometheus(out);
    } else {
      options_.metrics->WriteText(out);
    }
    response.body = out.str();
  }
  return response;
}

void Server::CaptureSlowRequest(Tenant& tenant, const Request& request,
                                const TraceContext& trace,
                                std::chrono::nanoseconds latency) {
  TraceSpan span(options_.tracer, "net/slowlog");
  std::ostringstream entry;
  entry << "{\"tenant\":" << JsonQuoted(tenant.config.name)
        << ",\"op\":" << JsonQuoted(request.op)
        << ",\"trace_id\":" << trace.trace_id
        << ",\"latency_ns\":" << latency.count() << ",\"threshold_ns\":"
        << tenant.config.slow_request_threshold.count();

  // EXPLAIN ANALYZE against a fresh snapshot, bounded by the tenant's own
  // per-attempt limits so a pathological request cannot hold the capture
  // path hostage. The re-run is not the request's execution — it is the
  // best reconstruction available after the fact (plans are stable for a
  // fixed state).
  entry << ",\"plan\":";
  Result<ExplainPlan> plan = [&]() -> Result<ExplainPlan> {
    if (tenant.store == nullptr) {
      return Status::FailedPrecondition("no local store");
    }
    ExecContext ctx(tenant.config.store_options.limits);
    ExecOptions exec;
    exec.ctx = &ctx;
    std::uint64_t sequence = 0;
    const Instance state = tenant.store->SnapshotState(&sequence);
    if (request.op == "query") {
      SETREC_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpression(request.body));
      SETREC_ASSIGN_OR_RETURN(Database database, EncodeInstance(state));
      return ExplainExpressionAnalyze(expr, database, exec);
    }
    if (request.op == "update") {
      const auto property_it = request.params.find("property");
      if (property_it == request.params.end()) {
        return Status::InvalidArgument("missing property");
      }
      SETREC_ASSIGN_OR_RETURN(PropertyId property,
                              options_.schema->FindProperty(
                                  property_it->second));
      SETREC_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpression(request.body));
      return ExplainSetOrientedUpdate(state, property, expr,
                                      /*analyze=*/true, exec);
    }
    return Status::Unimplemented("no plan for op '" + request.op + "'");
  }();
  if (plan.ok()) {
    entry << plan->ToJson();
  } else {
    entry << "null,\"plan_error\":"
          << JsonQuoted(plan.status().message());
  }

  // The request's span subtree (events of its family recorded so far).
  entry << ",\"spans\":[";
  if (options_.tracer != nullptr && trace.active()) {
    constexpr std::size_t kMaxSpans = 64;
    std::size_t written = 0;
    for (const SpanEvent& e : options_.tracer->Events()) {
      if (e.trace_id != trace.trace_id) continue;
      if (written >= kMaxSpans) break;
      if (written != 0) entry << ",";
      entry << "{\"name\":" << JsonQuoted(e.name) << ",\"id\":" << e.id
            << ",\"parent\":" << e.parent
            << ",\"remote_parent\":" << e.remote_parent
            << ",\"dur_ns\":" << e.dur_ns << "}";
      ++written;
    }
  }
  entry << "]";

  // Redacted flight-recorder slice: the recorder's own dump redacts the
  // free-form detail payloads (hash+length), so no user bytes leak into
  // the slow log. Keep only the most recent lines.
  entry << ",\"flight\":[";
  if (options_.recorder != nullptr) {
    std::ostringstream dump;
    FlightRecorder::DumpOptions dump_options;
    dump_options.reason = "slow-request";
    dump_options.redact_details = true;
    options_.recorder->Dump(dump, dump_options);
    std::vector<std::string> lines;
    std::string line;
    std::istringstream in(dump.str());
    while (std::getline(in, line)) lines.push_back(line);
    constexpr std::size_t kFlightLines = 16;
    const std::size_t first =
        lines.size() > kFlightLines ? lines.size() - kFlightLines : 0;
    for (std::size_t i = first; i < lines.size(); ++i) {
      if (i != first) entry << ",";
      // Dump lines are themselves JSON objects; embed them verbatim.
      entry << lines[i];
    }
  }
  entry << "]}";

  Status appended = tenant.slowlog->Append(entry.str());
  if (!appended.ok() && options_.recorder != nullptr) {
    options_.recorder->Record(FlightRecorder::EventKind::kStatus,
                              "net/slowlog-append",
                              static_cast<std::uint64_t>(appended.code()), 0,
                              appended.message());
  }
  if (options_.metrics != nullptr) {
    options_.metrics->CounterLabeled("tenant.slow_requests", "tenant",
                                     tenant.config.name)
        .Add(1);
  }
}

}  // namespace setrec
