#include "net/server.h"

#include <algorithm>
#include <filesystem>
#include <sstream>
#include <utility>

#include "incremental/view_cache.h"
#include "obs/explain.h"
#include "objrel/encoding.h"
#include "relational/evaluator.h"
#include "sql/engine.h"
#include "store/wal.h"
#include "text/parser.h"
#include "text/printer.h"

namespace setrec {

namespace {

Response ErrorResponse(const Status& status) {
  Response response;
  response.code = status.code();
  response.message = SanitizeHeaderValue(status.message());
  return response;
}

Response OkResponse() { return Response{}; }

/// Renders a query result deterministically: one line per tuple in sorted
/// order, values as ClassName(index) — the same object-literal spelling the
/// text format uses, so results are directly comparable across servers.
std::string RenderRelation(const Relation& relation, const Schema& schema) {
  std::string out;
  for (const Tuple* tuple : relation.SortedTuples()) {
    for (std::size_t i = 0; i < tuple->arity(); ++i) {
      if (i != 0) out.push_back(' ');
      const ObjectId o = tuple->at(i);
      out.append(schema.class_name(o.class_id()));
      out.push_back('(');
      out.append(std::to_string(o.index()));
      out.push_back(')');
    }
    out.push_back('\n');
  }
  return out;
}

Result<std::uint64_t> ParamU64(const Request& request, const char* name,
                               std::uint64_t fallback) {
  const auto it = request.params.find(name);
  if (it == request.params.end()) return fallback;
  std::uint64_t value = 0;
  if (it->second.empty()) {
    return Status::InvalidArgument(std::string("param ") + name +
                                   ": empty number");
  }
  for (char c : it->second) {
    if (c < '0' || c > '9' || value > (~std::uint64_t{0} - 9) / 10) {
      return Status::InvalidArgument(std::string("param ") + name +
                                     ": bad number");
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

}  // namespace

/// One tenant: its store (or replica), and the admission gate. The gate is
/// the tenant's *only* shared mutable state, so the lock never nests with
/// the store's own mutex.
struct Server::Tenant {
  TenantConfig config;
  /// Created before the store so DurableStore::Open can prime it; fed by
  /// the store's post-fsync publication from then on. Null when
  /// incremental_views is off or the tenant is replica-backed.
  std::unique_ptr<ViewCache> view_cache;
  std::unique_ptr<DurableStore> store;
  FollowerReplica* replica = nullptr;

  std::mutex mu;
  std::condition_variable cv;
  std::size_t active = 0;   // guarded by mu
  std::size_t waiting = 0;  // guarded by mu
};

Server::Server(ServerOptions options, std::unique_ptr<ThreadPool> owned_pool)
    : options_(std::move(options)),
      owned_pool_(std::move(owned_pool)),
      pool_(options_.pool != nullptr ? options_.pool : owned_pool_.get()) {}

Server::~Server() { Drain(); }

Result<std::unique_ptr<Server>> Server::Create(
    ServerOptions options, std::vector<TenantConfig> tenants) {
  if (options.schema == nullptr) {
    return Status::InvalidArgument("server: schema is required");
  }
  std::unique_ptr<ThreadPool> owned;
  if (options.pool == nullptr) {
    owned = std::make_unique<ThreadPool>(
        std::max<std::size_t>(1, options.own_pool_workers));
  }
  std::unique_ptr<Server> server(
      new Server(std::move(options), std::move(owned)));
  for (TenantConfig& config : tenants) {
    if (config.name.empty()) {
      return Status::InvalidArgument("server: tenant name must not be empty");
    }
    auto tenant = std::make_unique<Tenant>();
    const std::string dir =
        (std::filesystem::path(server->options_.data_dir) / config.name)
            .string();
    tenant->config = std::move(config);
    if (tenant->config.incremental_views) {
      if (tenant->config.store_options.view_cache != nullptr) {
        return Status::InvalidArgument(
            "server: store_options.view_cache is server-managed; leave null");
      }
      ViewCacheOptions cache_options;
      cache_options.metrics = server->options_.metrics;
      cache_options.tracer = server->options_.tracer;
      tenant->view_cache = std::make_unique<ViewCache>(
          server->options_.schema, cache_options);
      tenant->config.store_options.view_cache = tenant->view_cache.get();
    }
    SETREC_ASSIGN_OR_RETURN(
        tenant->store,
        DurableStore::Open(dir, server->options_.schema,
                           tenant->config.store_options));
    const std::string name = tenant->config.name;
    server->tenants_.emplace(name, std::move(tenant));
  }
  return server;
}

Status Server::ServeReplica(const std::string& tenant_name,
                            FollowerReplica* replica) {
  if (replica == nullptr) {
    return Status::InvalidArgument("server: replica must not be null");
  }
  std::lock_guard<std::mutex> lock(tenants_mu_);
  auto [it, inserted] =
      tenants_.emplace(tenant_name, std::make_unique<Tenant>());
  if (!inserted) {
    return Status::AlreadyExists("server: tenant '" + tenant_name +
                                 "' already exists");
  }
  it->second->config.name = tenant_name;
  it->second->replica = replica;
  return Status::OK();
}

Server::Tenant* Server::FindTenant(const std::string& name) {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  const auto it = tenants_.find(name);
  return it == tenants_.end() ? nullptr : it->second.get();
}

DurableStore* Server::store(const std::string& tenant) {
  Tenant* t = FindTenant(tenant);
  return t == nullptr ? nullptr : t->store.get();
}

std::size_t Server::active_sessions() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return active_sessions_;
}

bool Server::draining() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return draining_;
}

void Server::Serve(ConnectionPtr conn) {
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    if (draining_) {
      conn->Close();
      return;
    }
    ++active_sessions_;
  }
  if (options_.metrics != nullptr) {
    options_.metrics->GaugeNamed("net.sessions").Add(1);
  }
  // std::function requires a copyable closure; the shared_ptr wrapper
  // carries the unique_ptr until the task runs and takes sole ownership.
  auto holder = std::make_shared<ConnectionPtr>(std::move(conn));
  pool_->Post([this, holder] { SessionLoop(std::move(*holder)); });
}

void Server::Drain() {
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    if (draining_) {
      // Already draining: still wait for stragglers below.
    }
    draining_ = true;
  }
  // Wake every queued request so it sheds instead of waiting out its
  // deadline against a server that will never admit it.
  {
    std::lock_guard<std::mutex> lock(tenants_mu_);
    for (auto& [name, tenant] : tenants_) {
      std::lock_guard<std::mutex> tenant_lock(tenant->mu);
      tenant->cv.notify_all();
    }
  }
  std::unique_lock<std::mutex> lock(sessions_mu_);
  sessions_cv_.wait(lock, [this] { return active_sessions_ == 0; });
}

void Server::SessionLoop(ConnectionPtr conn) {
  TraceSpan session_span(options_.tracer, "net/session");
  FramedConnection framed(std::move(conn), options_.injector,
                          options_.metrics);
  std::uint64_t last_id = 0;
  bool has_cached = false;
  Frame cached_response;

  for (;;) {
    Result<Frame> in = framed.RecvFrame(options_.recv_timeout);
    if (!in.ok()) {
      if (in.status().code() == StatusCode::kDeadlineExceeded) {
        if (!draining()) continue;  // idle tick; keep serving
        Frame goodbye;
        goodbye.type = FrameType::kGoodbye;
        (void)framed.SendFrame(goodbye);
        break;
      }
      if (in.status().code() == StatusCode::kCorruptedLog) {
        if (options_.metrics != nullptr) {
          options_.metrics->CounterNamed("net.protocol_errors").Add(1);
        }
        if (options_.recorder != nullptr) {
          options_.recorder->Record(
              FlightRecorder::EventKind::kStatus, "net/session-corrupt",
              static_cast<std::uint64_t>(in.status().code()), last_id,
              in.status().message());
        }
      }
      break;  // peer closed, injected disconnect, or poisoned stream
    }
    if (in->type == FrameType::kGoodbye) break;
    if (in->type != FrameType::kRequest) {
      if (options_.metrics != nullptr) {
        options_.metrics->CounterNamed("net.protocol_errors").Add(1);
      }
      break;
    }
    // At-most-once per connection: a replayed id gets the cached response
    // (the client retried because our response was lost), a *regressing*
    // id is a protocol violation.
    if (in->request_id == last_id && has_cached) {
      if (!framed.SendFrame(cached_response).ok()) break;
      continue;
    }
    if (in->request_id <= last_id) {
      Frame reply;
      reply.type = FrameType::kResponse;
      reply.request_id = in->request_id;
      reply.payload = EncodeResponse(ErrorResponse(Status::InvalidArgument(
          "request id went backwards; ids must increase per session")));
      (void)framed.SendFrame(reply);
      if (options_.metrics != nullptr) {
        options_.metrics->CounterNamed("net.protocol_errors").Add(1);
      }
      break;
    }

    TraceSpan request_span(options_.tracer, "net/request");
    const auto started = std::chrono::steady_clock::now();
    Response response;
    Result<Request> request = DecodeRequest(in->payload);
    if (!request.ok()) {
      if (options_.metrics != nullptr) {
        options_.metrics->CounterNamed("net.protocol_errors").Add(1);
      }
      response = ErrorResponse(request.status());
    } else {
      if (options_.recorder != nullptr) {
        options_.recorder->Record(FlightRecorder::EventKind::kNote,
                                  "net/request", in->request_id, 0,
                                  request->op);
      }
      response = Dispatch(*request, framed);
    }
    if (options_.metrics != nullptr) {
      options_.metrics->CounterNamed("net.requests").Add(1);
      options_.metrics->HistogramNamed("net.request_ns")
          .Observe(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - started)
                  .count()));
    }
    Frame reply;
    reply.type = FrameType::kResponse;
    reply.request_id = in->request_id;
    reply.payload = EncodeResponse(response);
    last_id = in->request_id;
    cached_response = reply;
    has_cached = true;
    if (!framed.SendFrame(reply).ok()) break;
  }

  framed.Close();
  if (options_.metrics != nullptr) {
    options_.metrics->GaugeNamed("net.sessions").Add(-1);
  }
  {
    // Notify under the mutex: a Drain()er woken by the final decrement may
    // destroy this cv the instant it can re-acquire the lock, so the
    // broadcast must complete before we release it.
    std::lock_guard<std::mutex> lock(sessions_mu_);
    --active_sessions_;
    sessions_cv_.notify_all();
  }
}

Response Server::Dispatch(const Request& request, FramedConnection& framed) {
  if (request.op == "stats") return HandleStats();
  Tenant* tenant = FindTenant(request.tenant);
  if (tenant == nullptr) {
    return ErrorResponse(
        Status::NotFound("unknown tenant '" +
                         SanitizeHeaderValue(request.tenant) + "'"));
  }
  const std::chrono::milliseconds allowance =
      request.deadline_ms != 0
          ? std::chrono::milliseconds(request.deadline_ms)
          : tenant->config.default_deadline;
  const auto deadline = std::chrono::steady_clock::now() + allowance;

  if (request.op == "ping") return HandlePing(*tenant);
  if (request.op == "pull") return HandlePull(*tenant, request, framed);
  if (request.op == "snapshot") return HandleSnapshot(*tenant);
  if (request.op == "explain") return HandleExplain(*tenant, request);

  if (request.op == "update" || request.op == "delta" ||
      request.op == "query") {
    bool admitted = false;
    Response gate = Admit(*tenant, deadline, &admitted);
    if (!admitted) return gate;
    Response response;
    {
      TraceSpan span(options_.tracer, "net/execute");
      if (request.op == "update") {
        response = HandleUpdate(*tenant, request, deadline);
      } else if (request.op == "delta") {
        response = HandleDelta(*tenant, request, deadline);
      } else {
        response = HandleQuery(*tenant, request, deadline);
      }
    }
    Release(*tenant);
    return response;
  }
  return ErrorResponse(Status::Unimplemented(
      "unknown op '" + SanitizeHeaderValue(request.op) + "'"));
}

Response Server::Admit(Tenant& tenant,
                       std::chrono::steady_clock::time_point deadline,
                       bool* admitted) {
  TraceSpan span(options_.tracer, "net/admission");
  *admitted = false;
  const auto shed = [&](std::size_t queue_depth) {
    if (options_.metrics != nullptr) {
      options_.metrics->CounterNamed("net.shed").Add(1);
    }
    Response response = ErrorResponse(Status::ResourceExhausted(
        "tenant '" + tenant.config.name + "' is saturated"));
    // The hint grows with the pile-up: the deeper the queue at shed time,
    // the further away clients are pushed.
    response.retry_after_ms =
        options_.suggested_backoff_ms * (1 + queue_depth);
    return response;
  };

  std::unique_lock<std::mutex> lock(tenant.mu);
  if (draining()) return shed(tenant.waiting);
  if (tenant.active < tenant.config.max_concurrency) {
    ++tenant.active;
    *admitted = true;
    return OkResponse();
  }
  if (tenant.waiting >= tenant.config.max_queue) return shed(tenant.waiting);
  ++tenant.waiting;
  while (tenant.active >= tenant.config.max_concurrency) {
    if (tenant.cv.wait_until(lock, deadline) == std::cv_status::timeout) {
      --tenant.waiting;
      return ErrorResponse(Status::DeadlineExceeded(
          "deadline expired in tenant '" + tenant.config.name +
          "' admission queue"));
    }
    if (draining()) {
      --tenant.waiting;
      return shed(tenant.waiting);
    }
  }
  --tenant.waiting;
  ++tenant.active;
  *admitted = true;
  return OkResponse();
}

void Server::Release(Tenant& tenant) {
  {
    std::lock_guard<std::mutex> lock(tenant.mu);
    --tenant.active;
  }
  tenant.cv.notify_one();
}

ExecContext::Limits Server::RequestLimits(
    const Tenant& tenant,
    std::chrono::steady_clock::time_point deadline) const {
  ExecContext::Limits limits = tenant.config.store_options.limits;
  const auto now = std::chrono::steady_clock::now();
  const auto remaining =
      deadline > now
          ? std::chrono::duration_cast<std::chrono::nanoseconds>(deadline -
                                                                 now)
          : std::chrono::nanoseconds(1);
  // The statement's clock allowance is the *smaller* of the tenant budget
  // and what is left of the request deadline (queue time already spent
  // counts against the client's allowance).
  if (limits.timeout == std::chrono::nanoseconds::zero() ||
      limits.timeout > remaining) {
    limits.timeout = remaining;
  }
  return limits;
}

Response Server::HandlePing(Tenant& tenant) {
  Response response = OkResponse();
  if (tenant.replica != nullptr) {
    std::uint64_t applied = 0;
    std::uint64_t leader = 0;
    (void)tenant.replica->Read(&applied, &leader);
    response.applied_sequence = applied;
    response.leader_sequence = leader;
  } else if (tenant.store != nullptr) {
    response.applied_sequence = tenant.store->last_sequence();
    response.leader_sequence = response.applied_sequence;
  }
  return response;
}

Response Server::HandleUpdate(
    Tenant& tenant, const Request& request,
    std::chrono::steady_clock::time_point deadline) {
  if (tenant.store == nullptr) {
    return ErrorResponse(Status::FailedPrecondition(
        "tenant '" + tenant.config.name + "' is a read-only replica"));
  }
  const auto property_it = request.params.find("property");
  if (property_it == request.params.end()) {
    return ErrorResponse(
        Status::InvalidArgument("update: missing 'property' param"));
  }
  Result<PropertyId> property =
      options_.schema->FindProperty(property_it->second);
  if (!property.ok()) return ErrorResponse(property.status());
  Result<ExprPtr> query = ParseExpression(request.body);
  if (!query.ok()) return ErrorResponse(query.status());

  const ExprPtr& receiver_query = *query;
  const PropertyId prop = *property;
  Status committed = tenant.store->Commit(
      [&](Instance& instance, ExecContext& ctx,
          const CommitHook& hook) -> Status {
        // The cache serves phase one (receiver set) when present; the
        // store's own hook publication keeps it in lockstep afterwards.
        return SetOrientedUpdateInPlace(instance, prop, receiver_query, ctx,
                                        hook, tenant.view_cache.get());
      },
      RequestLimits(tenant, deadline));
  if (!committed.ok()) return ErrorResponse(committed);
  Response response = OkResponse();
  response.applied_sequence = tenant.store->last_sequence();
  response.leader_sequence = response.applied_sequence;
  return response;
}

Response Server::HandleDelta(Tenant& tenant, const Request& request,
                             std::chrono::steady_clock::time_point deadline) {
  if (tenant.store == nullptr) {
    return ErrorResponse(Status::FailedPrecondition(
        "tenant '" + tenant.config.name + "' is a read-only replica"));
  }
  Result<InstanceDelta> delta =
      ParseDelta(request.body, options_.schema);
  if (!delta.ok()) return ErrorResponse(delta.status());
  const InstanceDelta& parsed = *delta;
  Status committed = tenant.store->Commit(
      [&](Instance& instance, ExecContext& ctx,
          const CommitHook& hook) -> Status {
        SETREC_RETURN_IF_ERROR(ctx.CheckPoint("net/apply-delta"));
        Instance before = instance;
        Status applied = ApplyDelta(instance, parsed);
        if (applied.ok()) applied = hook(before, instance);
        if (!applied.ok()) {
          instance = std::move(before);
          return applied;
        }
        return Status::OK();
      },
      RequestLimits(tenant, deadline));
  if (!committed.ok()) return ErrorResponse(committed);
  Response response = OkResponse();
  response.applied_sequence = tenant.store->last_sequence();
  response.leader_sequence = response.applied_sequence;
  return response;
}

Response Server::HandleQuery(Tenant& tenant, const Request& request,
                             std::chrono::steady_clock::time_point deadline) {
  Result<ExprPtr> query = ParseExpression(request.body);
  if (!query.ok()) return ErrorResponse(query.status());

  ExecContext ctx(RequestLimits(tenant, deadline));
  ctx.set_fault_injector(tenant.config.store_options.injector);
  ctx.set_tracer(options_.tracer);
  ctx.set_metrics(options_.metrics);
  ctx.set_recorder(options_.recorder);

  std::uint64_t applied = 0;
  std::uint64_t leader = 0;
  if (tenant.view_cache != nullptr && tenant.store != nullptr) {
    // Leader fast path: answer from the incrementally-maintained view,
    // governed by the same request context as from-scratch evaluation. The
    // sequence is read *before* the view, so a commit racing the read can
    // only make the response understate its own freshness. A governance
    // stop (deadline, budget, cancellation) is the request's final answer;
    // any other cache error (unprimed after a fault, unsupported
    // expression) falls through to from-scratch evaluation below.
    applied = tenant.store->last_sequence();
    Result<std::shared_ptr<const Relation>> view =
        tenant.view_cache->Query(*query, &ctx);
    if (view.ok()) {
      Response response = OkResponse();
      response.body = RenderRelation(**view, *options_.schema);
      response.applied_sequence = applied;
      response.leader_sequence = applied;
      return response;
    }
    if (IsGovernanceError(view.status())) return ErrorResponse(view.status());
  }
  Instance state(options_.schema);
  if (tenant.replica != nullptr) {
    state = tenant.replica->Read(&applied, &leader);
  } else if (tenant.store != nullptr) {
    state = tenant.store->SnapshotState(&applied);
    leader = applied;
  } else {
    return ErrorResponse(Status::Internal("tenant has no backing state"));
  }
  Result<Database> database = EncodeInstance(state);
  if (!database.ok()) return ErrorResponse(database.status());

  Result<Relation> result = Evaluate(*query, *database, ctx);
  if (!result.ok()) return ErrorResponse(result.status());

  Response response = OkResponse();
  response.body = RenderRelation(*result, *options_.schema);
  response.applied_sequence = applied;
  response.leader_sequence = leader;
  return response;
}

Response Server::HandleExplain(Tenant& tenant, const Request& request) {
  Result<ExprPtr> query = ParseExpression(request.body);
  if (!query.ok()) return ErrorResponse(query.status());
  Result<Catalog> catalog = EncodeCatalog(*options_.schema);
  if (!catalog.ok()) return ErrorResponse(catalog.status());
  Result<ExplainPlan> plan = ExplainExpression(*query, *catalog);
  if (!plan.ok()) return ErrorResponse(plan.status());
  Response response = OkResponse();
  response.body = plan->ToText();
  if (tenant.replica != nullptr) {
    std::uint64_t applied = 0;
    std::uint64_t leader = 0;
    (void)tenant.replica->Read(&applied, &leader);
    response.applied_sequence = applied;
    response.leader_sequence = leader;
  } else if (tenant.store != nullptr) {
    response.applied_sequence = tenant.store->last_sequence();
    response.leader_sequence = response.applied_sequence;
  }
  return response;
}

Response Server::HandlePull(Tenant& tenant, const Request& request,
                            FramedConnection& framed) {
  TraceSpan span(options_.tracer, "net/pull");
  if (tenant.store == nullptr) {
    return ErrorResponse(Status::FailedPrecondition(
        "tenant '" + tenant.config.name +
        "' cannot serve replication (not a leader)"));
  }
  Result<std::uint64_t> from = ParamU64(request, "from", 1);
  if (!from.ok()) return ErrorResponse(from.status());
  Result<std::uint64_t> max_records = ParamU64(request, "max", 256);
  if (!max_records.ok()) return ErrorResponse(max_records.status());

  // Read the leader's own WAL — the replication stream IS the recovery
  // log, bit for bit. Reading a prefix while commits append is safe: a
  // concurrently half-written tail parses as torn and simply isn't
  // shipped this round.
  const std::string wal_path =
      (std::filesystem::path(tenant.store->dir()) / "wal.log").string();
  Result<WalReplay> replay = ReadWal(wal_path);
  if (!replay.ok()) return ErrorResponse(replay.status());
  const std::uint64_t leader_sequence = tenant.store->last_sequence();

  const std::uint64_t first_available =
      replay->records.empty() ? leader_sequence + 1
                              : replay->records.front().sequence;
  if (*from < first_available && *from <= leader_sequence) {
    // The follower's position was checkpointed away: its next record no
    // longer exists in the log. Only the snapshot can bridge the gap.
    Response response = ErrorResponse(Status::NotFound(
        "log history starts at sequence " +
        std::to_string(first_available) + "; resync from snapshot"));
    response.leader_sequence = leader_sequence;
    return response;
  }

  std::uint64_t shipped = 0;
  std::uint64_t last_shipped = 0;
  for (const WalRecord& record : replay->records) {
    if (record.sequence < *from) continue;
    if (shipped >= *max_records) break;
    Frame frame;
    frame.type = FrameType::kWalRecord;
    frame.request_id = record.sequence;
    frame.payload = record.payload;
    Status sent = framed.SendFrame(frame);
    if (!sent.ok()) return ErrorResponse(sent);
    ++shipped;
    last_shipped = record.sequence;
    if (options_.metrics != nullptr) {
      options_.metrics->CounterNamed("net.replication.records_shipped")
          .Add(1);
    }
  }
  Response response = OkResponse();
  response.applied_sequence = last_shipped;
  response.leader_sequence = leader_sequence;
  return response;
}

Response Server::HandleSnapshot(Tenant& tenant) {
  TraceSpan span(options_.tracer, "net/snapshot");
  if (tenant.store == nullptr) {
    return ErrorResponse(Status::FailedPrecondition(
        "tenant '" + tenant.config.name +
        "' cannot serve snapshots (not a leader)"));
  }
  std::uint64_t sequence = 0;
  const Instance state = tenant.store->SnapshotState(&sequence);
  Response response = OkResponse();
  response.body =
      "sequence " + std::to_string(sequence) + "\n" + InstanceToText(state);
  response.applied_sequence = sequence;
  response.leader_sequence = sequence;
  return response;
}

Response Server::HandleStats() {
  Response response = OkResponse();
  if (options_.metrics != nullptr) {
    std::ostringstream out;
    options_.metrics->WriteText(out);
    response.body = out.str();
  }
  return response;
}

}  // namespace setrec
