#include "net/transport.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>

namespace setrec {

namespace {

/// One direction of the in-process pair: a bounded byte buffer with
/// writer-blocks-when-full / reader-blocks-when-empty semantics. `closed`
/// covers both endpoints — the pipe does not distinguish which side closed,
/// because a stream transport's failure mode is symmetric ("the connection
/// is gone"), and the Connection contract only needs reads to distinguish
/// clean EOF (drained + closed) from abort (closed with the reader's own
/// endpoint shut).
struct Pipe {
  explicit Pipe(std::size_t cap) : capacity(cap) {}

  std::mutex mu;
  std::condition_variable readable;
  std::condition_variable writable;
  std::string buffer;
  const std::size_t capacity;
  bool closed = false;
};

class InProcessConnection final : public Connection {
 public:
  InProcessConnection(std::shared_ptr<Pipe> read_from,
                      std::shared_ptr<Pipe> write_to)
      : read_from_(std::move(read_from)), write_to_(std::move(write_to)) {}

  ~InProcessConnection() override { Close(); }

  Status Send(std::string_view data) override {
    std::size_t sent = 0;
    while (sent < data.size()) {
      std::unique_lock<std::mutex> lock(write_to_->mu);
      write_to_->writable.wait(lock, [&] {
        return write_to_->closed ||
               write_to_->buffer.size() < write_to_->capacity;
      });
      if (write_to_->closed) {
        return Status::FailedPrecondition("connection closed");
      }
      const std::size_t room = write_to_->capacity - write_to_->buffer.size();
      const std::size_t n = std::min(room, data.size() - sent);
      write_to_->buffer.append(data.data() + sent, n);
      sent += n;
      write_to_->readable.notify_one();
    }
    return Status::OK();
  }

  Result<std::size_t> Recv(std::size_t max, std::chrono::milliseconds timeout,
                           std::string* out) override {
    std::unique_lock<std::mutex> lock(read_from_->mu);
    const bool ready = read_from_->readable.wait_for(lock, timeout, [&] {
      return read_from_->closed || !read_from_->buffer.empty();
    });
    if (!ready) {
      return Status::DeadlineExceeded("recv timed out");
    }
    if (read_from_->buffer.empty()) {
      // Closed and drained. A close initiated by *this* endpoint is an
      // abort; the peer's close with no bytes left is clean EOF.
      if (locally_closed_) {
        return Status::FailedPrecondition("connection closed");
      }
      return std::size_t{0};
    }
    const std::size_t n = std::min(max, read_from_->buffer.size());
    out->append(read_from_->buffer.data(), n);
    read_from_->buffer.erase(0, n);
    read_from_->writable.notify_one();
    return n;
  }

  void Close() override {
    locally_closed_ = true;
    for (const std::shared_ptr<Pipe>& pipe : {read_from_, write_to_}) {
      {
        std::lock_guard<std::mutex> lock(pipe->mu);
        pipe->closed = true;
      }
      pipe->readable.notify_all();
      pipe->writable.notify_all();
    }
  }

  bool closed() const override {
    std::lock_guard<std::mutex> lock(write_to_->mu);
    return write_to_->closed;
  }

 private:
  std::shared_ptr<Pipe> read_from_;
  std::shared_ptr<Pipe> write_to_;
  /// Set only by this endpoint's Close(); lets Recv distinguish "I was shut
  /// down" (kFailedPrecondition) from "peer finished" (EOF). Atomicity is
  /// not needed: written before the pipes' locked close, read after a
  /// locked observation of `closed`.
  std::atomic<bool> locally_closed_{false};
};

}  // namespace

std::pair<ConnectionPtr, ConnectionPtr> CreateInProcessPair(
    std::size_t buffer_capacity) {
  auto a_to_b = std::make_shared<Pipe>(buffer_capacity);
  auto b_to_a = std::make_shared<Pipe>(buffer_capacity);
  ConnectionPtr a =
      std::make_unique<InProcessConnection>(b_to_a, a_to_b);
  ConnectionPtr b =
      std::make_unique<InProcessConnection>(a_to_b, b_to_a);
  return {std::move(a), std::move(b)};
}

}  // namespace setrec
