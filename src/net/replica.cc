#include "net/replica.h"

#include <utility>

#include "text/parser.h"

namespace setrec {

namespace {

/// First line of a snapshot body: "sequence <u64>\n"; the rest is the
/// instance text. Kept deliberately simpler than the on-disk snapshot
/// header — the frame CRC already covers integrity in flight.
Result<std::pair<std::uint64_t, std::string_view>> SplitSnapshotBody(
    std::string_view body) {
  const std::size_t newline = body.find('\n');
  if (newline == std::string_view::npos || body.compare(0, 9, "sequence ") != 0) {
    return Status::InvalidArgument("snapshot body: missing sequence line");
  }
  std::uint64_t sequence = 0;
  for (char c : body.substr(9, newline - 9)) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("snapshot body: bad sequence");
    }
    sequence = sequence * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return std::make_pair(sequence, body.substr(newline + 1));
}

}  // namespace

FollowerReplica::FollowerReplica(Options options)
    : options_(std::move(options)), instance_(options_.schema) {}

Result<std::unique_ptr<FollowerReplica>> FollowerReplica::Create(
    Options options) {
  if (options.schema == nullptr) {
    return Status::InvalidArgument("replica: schema is required");
  }
  if (!options.dial) {
    return Status::InvalidArgument("replica: dialer is required");
  }
  if (options.pull_batch == 0) options.pull_batch = 1;
  return std::unique_ptr<FollowerReplica>(
      new FollowerReplica(std::move(options)));
}

FollowerReplica::~FollowerReplica() { StopTailing(); }

Status FollowerReplica::EnsureConnected() {
  if (conn_ != nullptr && !conn_->closed()) return Status::OK();
  Result<ConnectionPtr> dialed = options_.dial();
  if (!dialed.ok()) {
    conn_.reset();
    return dialed.status();
  }
  conn_ = std::make_unique<FramedConnection>(
      std::move(dialed).value(), options_.injector, options_.metrics);
  return Status::OK();
}

Result<Response> FollowerReplica::RoundTrip(
    const Request& request,
    const std::function<Status(const Frame&)>& on_record) {
  SETREC_RETURN_IF_ERROR(EnsureConnected());
  const std::uint64_t id = next_request_id_++;
  Frame out;
  out.type = FrameType::kRequest;
  out.request_id = id;
  out.payload = EncodeRequest(request);
  Status sent = conn_->SendFrame(out);
  if (!sent.ok()) {
    conn_.reset();
    return sent;
  }
  for (;;) {
    Result<Frame> in = conn_->RecvFrame(options_.recv_timeout);
    if (!in.ok()) {
      conn_.reset();
      return in.status();
    }
    if (in->type == FrameType::kWalRecord) {
      SETREC_RETURN_IF_ERROR(on_record(*in));
      continue;
    }
    if (in->type == FrameType::kResponse && in->request_id == id) {
      return DecodeResponse(in->payload);
    }
    // A stale response (an earlier round's trailer raced a timeout) or a
    // goodbye; stale frames are discarded, a goodbye ends the stream.
    if (in->type == FrameType::kGoodbye) {
      conn_.reset();
      return Status::FailedPrecondition("leader said goodbye mid-round");
    }
  }
}

Status FollowerReplica::ApplyRecord(const Frame& record) {
  // Continue the family of the commit that produced this record: the
  // installed context overrides the enclosing net/pull span's (untraced)
  // family, so the replay span lands in the writer's timeline with the
  // leader-side origin span as its remote parent.
  ScopedTraceContext trace_scope(
      options_.tracer,
      TraceContext{record.trace_id, record.trace_parent, record.sampled});
  TraceSpan span(options_.tracer, "net/replay");
  const std::uint64_t sequence = record.request_id;
  std::lock_guard<std::mutex> lock(state_mu_);
  if (sequence <= applied_) return Status::OK();  // duplicate: idempotent
  if (sequence != applied_ + 1) {
    return Status::CorruptedLog(
        "replication gap: expected sequence " +
        std::to_string(applied_ + 1) + ", got " + std::to_string(sequence));
  }
  Result<InstanceDelta> delta = ParseDelta(record.payload, options_.schema);
  if (!delta.ok()) {
    return Status::CorruptedLog("unreplayable replicated record: " +
                                delta.status().ToString());
  }
  SETREC_RETURN_IF_ERROR(ApplyDelta(instance_, *delta));
  applied_ = sequence;
  last_apply_ns_.store(
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count()),
      std::memory_order_relaxed);
  if (options_.metrics != nullptr) {
    options_.metrics->CounterNamed("net.replication.records_applied").Add(1);
  }
  return Status::OK();
}

Status FollowerReplica::TailOnce() {
  TraceSpan span(options_.tracer, "net/pull");
  Request request;
  request.op = "pull";
  request.tenant = options_.tenant;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    request.params["from"] = std::to_string(applied_ + 1);
  }
  request.params["max"] = std::to_string(options_.pull_batch);

  // Record-level damage (gap, unparsable payload) is remembered and turned
  // into a resync after the stream drains — never applied.
  Status apply_failure = Status::OK();
  Result<Response> trailer = RoundTrip(request, [&](const Frame& record) {
    if (!apply_failure.ok()) return Status::OK();  // drain the stream
    apply_failure = ApplyRecord(record);
    return Status::OK();
  });
  if (!trailer.ok()) {
    healthy_.store(false, std::memory_order_relaxed);
    return trailer.status();
  }
  if (trailer->code == StatusCode::kNotFound || !apply_failure.ok()) {
    // The leader truncated past our position, or the stream was damaged:
    // either way the snapshot is the only safe resume point.
    Status resynced = Resync();
    if (!resynced.ok()) {
      healthy_.store(false, std::memory_order_relaxed);
      return resynced;
    }
    healthy_.store(true, std::memory_order_relaxed);
    return Status::OK();
  }
  if (trailer->code != StatusCode::kOk) {
    healthy_.store(false, std::memory_order_relaxed);
    return StatusFromCode(trailer->code, "pull failed: " + trailer->message);
  }
  leader_.store(trailer->leader_sequence, std::memory_order_relaxed);
  healthy_.store(true, std::memory_order_relaxed);
  PublishLag();
  return Status::OK();
}

void FollowerReplica::PublishLag() {
  if (options_.metrics == nullptr) return;
  const std::uint64_t applied = applied_sequence();
  const std::uint64_t leader = leader_.load(std::memory_order_relaxed);
  const std::uint64_t lag = leader > applied ? leader - applied : 0;
  options_.metrics->GaugeNamed("net.replication.lag")
      .Set(static_cast<std::int64_t>(lag));
  options_.metrics
      ->GaugeLabeled("tenant.replication.lag", "tenant", options_.tenant)
      .Set(static_cast<std::int64_t>(lag));
  // Staleness in wall time: how long since this follower last applied a
  // record (0 until the first apply — a freshly caught-up idle follower
  // reports its true idle age, which is the point of the gauge).
  const std::uint64_t last = last_apply_ns_.load(std::memory_order_relaxed);
  std::int64_t ms_since = 0;
  if (last != 0) {
    const auto now_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
    if (now_ns > last) {
      ms_since = static_cast<std::int64_t>((now_ns - last) / 1000000u);
    }
  }
  options_.metrics
      ->GaugeLabeled("tenant.replication.ms_since_apply", "tenant",
                     options_.tenant)
      .Set(ms_since);
}

Status FollowerReplica::Resync() {
  TraceSpan span(options_.tracer, "net/resync");
  Request request;
  request.op = "snapshot";
  request.tenant = options_.tenant;
  Result<Response> response =
      RoundTrip(request, [](const Frame&) { return Status::OK(); });
  SETREC_RETURN_IF_ERROR(response.status());
  if (response->code != StatusCode::kOk) {
    return StatusFromCode(response->code,
                          "snapshot fetch failed: " + response->message);
  }
  SETREC_ASSIGN_OR_RETURN(const auto split, SplitSnapshotBody(response->body));
  SETREC_ASSIGN_OR_RETURN(Instance fresh,
                          ParseInstance(split.second, options_.schema));
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    instance_ = std::move(fresh);
    applied_ = split.first;
  }
  leader_.store(std::max(response->leader_sequence, split.first),
                std::memory_order_relaxed);
  resyncs_.fetch_add(1, std::memory_order_relaxed);
  last_apply_ns_.store(
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count()),
      std::memory_order_relaxed);
  if (options_.metrics != nullptr) {
    options_.metrics->CounterNamed("net.replication.resyncs").Add(1);
  }
  PublishLag();
  return Status::OK();
}

void FollowerReplica::StartTailing(std::chrono::milliseconds interval) {
  StopTailing();
  stop_tailing_.store(false, std::memory_order_relaxed);
  tailer_ = std::thread([this, interval] {
    while (!stop_tailing_.load(std::memory_order_relaxed)) {
      (void)TailOnce();  // failures show up as healthy() == false
      std::this_thread::sleep_for(interval);
    }
  });
}

void FollowerReplica::StopTailing() {
  if (!tailer_.joinable()) return;
  stop_tailing_.store(true, std::memory_order_relaxed);
  tailer_.join();
}

Instance FollowerReplica::Read(std::uint64_t* applied,
                               std::uint64_t* leader) const {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (applied != nullptr) *applied = applied_;
  if (leader != nullptr) {
    *leader = std::max(leader_.load(std::memory_order_relaxed), applied_);
  }
  return instance_;
}

std::uint64_t FollowerReplica::applied_sequence() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return applied_;
}

std::uint64_t FollowerReplica::leader_sequence() const {
  const std::uint64_t l = leader_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(state_mu_);
  return std::max(l, applied_);
}

}  // namespace setrec
