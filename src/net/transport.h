#ifndef SETREC_NET_TRANSPORT_H_
#define SETREC_NET_TRANSPORT_H_

#include <chrono>
#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "core/status.h"

namespace setrec {

/// A blocking, bidirectional, ordered byte stream — the one abstraction the
/// framing layer needs from a transport. Two implementations exist:
///
///   * the in-process pipe pair below, the deterministic test transport
///     (bounded buffers, no sockets, no ports, works under every sanitizer);
///   * net/tcp.h, a minimal loopback TCP transport for the smoke tests and
///     real deployments.
///
/// Semantics every implementation honors:
///
///   * Send() blocks until the bytes are accepted (buffered or on the wire)
///     and delivers all-or-error; after either side closed it returns
///     kFailedPrecondition.
///   * Recv() blocks until at least one byte is available, appending up to
///     `max` bytes to `*out` and returning the count. Returning 0 means the
///     peer closed cleanly (EOF). A timeout returns kDeadlineExceeded; a
///     locally closed connection returns kFailedPrecondition.
///   * Close() is idempotent and safe to call from *another thread* while a
///     Recv is blocked — the blocked call wakes and returns
///     kFailedPrecondition. This is how a server drains sessions stuck in
///     reads.
class Connection {
 public:
  virtual ~Connection() = default;

  virtual Status Send(std::string_view data) = 0;
  virtual Result<std::size_t> Recv(std::size_t max,
                                   std::chrono::milliseconds timeout,
                                   std::string* out) = 0;
  virtual void Close() = 0;
  virtual bool closed() const = 0;
};

using ConnectionPtr = std::unique_ptr<Connection>;

/// Produces a fresh connection to some fixed endpoint; called on first use
/// and again after any connection failure. Both the follower replica and
/// the retrying client reconnect through one of these, so transports are
/// swappable (in-process pair in tests, TCP in deployments).
using Dialer = std::function<Result<ConnectionPtr>()>;

/// Creates a connected in-process pair: bytes sent on one endpoint are
/// received on the other, through two bounded buffers (default 1 MiB each —
/// a sender outrunning its receiver blocks, modeling transport backpressure
/// rather than unbounded queueing). Closing either endpoint wakes and fails
/// every blocked operation on both.
std::pair<ConnectionPtr, ConnectionPtr> CreateInProcessPair(
    std::size_t buffer_capacity = 1 << 20);

}  // namespace setrec

#endif  // SETREC_NET_TRANSPORT_H_
