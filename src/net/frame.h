#ifndef SETREC_NET_FRAME_H_
#define SETREC_NET_FRAME_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "core/fault_injection.h"
#include "core/status.h"
#include "net/transport.h"
#include "obs/metrics.h"

namespace setrec {

/// Length-prefixed, checksummed framing over a byte stream.
///
/// Wire layout (little-endian, 24-byte header + payload):
///
///   "SRN1" magic | u32 payload length | u32 CRC-32 | u8 type | u8 flags
///   | u16 reserved | u64 request id | payload bytes
///
/// The CRC (the WAL's Crc32) covers everything after itself: type, flags,
/// reserved, request id, payload — so a flipped bit anywhere in the frame
/// body or a truncated payload is detected, not interpreted. The magic makes
/// a desynchronized stream (a frame cut mid-payload by a fault, a foreign
/// protocol) fail fast with kCorruptedLog instead of a huge bogus length
/// allocation; a sanity cap on the length field backstops that.
///
/// Trace context rides in the previously-zero flags byte plus an optional
/// 16-byte trace block between header and payload:
///
///   flags bit 0 (kFrameFlagTraced)  — a trace block is present: the first
///     16 payload-position bytes are `u64 trace_id | u64 trace_parent`,
///     counted by the length field and covered by the CRC like any payload
///     byte, then stripped before the payload reaches the caller.
///   flags bit 1 (kFrameFlagSampled) — the family is sampled; receivers
///     only install a TraceContext (obs/trace.h) when it is set.
///
/// A flag-bit-0 frame shorter than 16 bytes is kCorruptedLog. Old decoders
/// never see the block (no old decoder exists to care — the bit was
/// reserved-must-be-zero), and untraced frames are byte-identical to the
/// previous wire format.
///
/// Like the hardened text parsers, the decoder is a funnel: every byte of
/// the peer passes through it before any other code sees the payload, and
/// every malformed input maps to a typed error (never a crash, never a
/// hang — reads carry deadlines).

enum class FrameType : std::uint8_t {
  kRequest = 1,   // payload: an encoded Request (net/message.h)
  kResponse = 2,  // payload: an encoded Response
  kWalRecord = 3, // replication: payload is a WAL record payload, request id
                  // carries the record's sequence number
  kGoodbye = 4,   // clean shutdown notice; no payload
};

struct Frame {
  FrameType type = FrameType::kRequest;
  std::uint64_t request_id = 0;
  std::string payload;
  /// Cross-process trace context (see the wire-layout comment above and
  /// obs/trace.h). trace_id == 0 means untraced: the frame encodes without
  /// a trace block, byte-identical to the pre-trace wire format.
  std::uint64_t trace_id = 0;
  std::uint64_t trace_parent = 0;
  bool sampled = false;
};

/// Frame flags (the u8 at header offset 13).
constexpr std::uint8_t kFrameFlagTraced = 1u << 0;
constexpr std::uint8_t kFrameFlagSampled = 1u << 1;

/// Bytes of the optional trace block (u64 trace_id | u64 trace_parent).
constexpr std::uint32_t kTraceBlockBytes = 16;

/// Hard cap on a frame payload (64 MiB). A length field above this is
/// corruption by definition, mirroring the WAL reader's kMaxPayloadBytes.
/// The decoder allows kTraceBlockBytes on top for the trace block, which
/// the length field counts.
constexpr std::uint32_t kMaxFramePayloadBytes = 1u << 26;

/// Framing over a Connection, with fault injection and metrics on both
/// directions. Not internally synchronized: a FramedConnection belongs to
/// one session/call at a time (the server gives each session its own; the
/// client serializes calls on a mutex).
class FramedConnection {
 public:
  /// `injector` and `metrics` are borrowed and may be null. The injector is
  /// consulted once per physical send ("net/send") and once per frame
  /// decode ("net/recv") — see FaultInjector's NetFaultKind for the menu.
  explicit FramedConnection(ConnectionPtr conn,
                            FaultInjector* injector = nullptr,
                            MetricsRegistry* metrics = nullptr);

  /// Encodes and writes one frame. Injected faults surface as:
  ///   drop      → OK, nothing written (a silently lost frame; the peer's
  ///               read deadline converts it into kDeadlineExceeded there)
  ///   duplicate → the frame is written twice (dedup is the receiver's job)
  ///   truncate  → a prefix is written, then the connection closes;
  ///               returns kInternal
  ///   delay     → the write happens after the configured pause
  ///   disconnect→ the connection closes; returns kFailedPrecondition
  Status SendFrame(const Frame& frame);

  /// Reads one complete frame, buffering partial reads, within `timeout`
  /// overall. Corrupt input (bad magic, oversized length, CRC mismatch,
  /// unknown type) returns kCorruptedLog and poisons the stream — framing
  /// cannot resynchronize, so the connection is closed. A clean peer close
  /// mid-silence returns kFailedPrecondition("connection closed by peer");
  /// a close *inside* a frame is kCorruptedLog (the frame was torn).
  /// An injected recv-side `drop` discards the decoded frame and keeps
  /// reading; `disconnect` closes and fails; `delay` pauses first.
  Result<Frame> RecvFrame(std::chrono::milliseconds timeout);

  void Close();
  bool closed() const { return conn_ == nullptr || conn_->closed(); }

 private:
  Status WriteAll(std::string_view bytes);

  ConnectionPtr conn_;
  FaultInjector* injector_;
  MetricsRegistry* metrics_;
  /// Bytes received but not yet consumed as a frame.
  std::string inbox_;
};

}  // namespace setrec

#endif  // SETREC_NET_FRAME_H_
