#ifndef SETREC_OBJREL_ENCODING_H_
#define SETREC_OBJREL_ENCODING_H_

#include <string>

#include "core/instance.h"
#include "core/schema.h"
#include "relational/dependencies.h"
#include "relational/relation.h"
#include "relational/schema.h"

namespace setrec {

/// The relational representation of object bases (Section 5.1). For a
/// schema S the corresponding relational database schema contains, for each
/// class name C, the unary relation scheme C (attribute C with domain Δ_C),
/// and for each edge (C, a, B), the binary relation scheme "Ca" with
/// attributes C (domain Δ_C) and a (domain Δ_B). Relation "Ca" is named by
/// concatenating the class and property names, exactly as the paper writes
/// Df for Drinker.frequents.

/// Name of the binary relation representing property `p` ("Ca").
std::string PropertyRelationName(const Schema& schema, PropertyId p);

/// Builds the relational catalog corresponding to `schema`. Fails if the
/// concatenated relation names collide (e.g. class "A" + property "BC"
/// versus class "AB" + property "C"); rename schema elements to resolve.
Result<Catalog> EncodeCatalog(const Schema& schema);

/// The integrity constraints the encoding induces (Section 5.1): for each
/// edge (C, a, B), the full inclusion dependencies Ca[C] ⊆ C and Ca[a] ⊆ B,
/// plus pairwise disjointness of all class relations. (Disjointness also
/// holds structurally in this typed model.)
DependencySet InducedDependencies(const Schema& schema);

/// Encodes an object-base instance as a relational database instance.
Result<Database> EncodeInstance(const Instance& instance);

/// Decodes a relational database back into an object-base instance of
/// `schema`. Fails if the database does not satisfy the induced inclusion
/// dependencies (dangling property tuples) or misses a relation. Together
/// with EncodeInstance this realizes Proposition 5.1's exact correspondence.
Result<Instance> DecodeInstance(const Database& database,
                                const Schema& schema);

}  // namespace setrec

#endif  // SETREC_OBJREL_ENCODING_H_
