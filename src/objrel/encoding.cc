#include "objrel/encoding.h"

#include <set>

namespace setrec {

std::string PropertyRelationName(const Schema& schema, PropertyId p) {
  const Schema::PropertyDef& def = schema.property(p);
  return schema.class_name(def.source) + def.name;
}

Result<Catalog> EncodeCatalog(const Schema& schema) {
  Catalog catalog;
  for (ClassId c = 0; c < schema.num_classes(); ++c) {
    SETREC_ASSIGN_OR_RETURN(
        RelationScheme scheme,
        RelationScheme::Make({Attribute{schema.class_name(c), c}}));
    SETREC_RETURN_IF_ERROR(
        catalog.AddRelation(schema.class_name(c), std::move(scheme)));
  }
  for (PropertyId p = 0; p < schema.num_properties(); ++p) {
    const Schema::PropertyDef& def = schema.property(p);
    SETREC_ASSIGN_OR_RETURN(
        RelationScheme scheme,
        RelationScheme::Make(
            {Attribute{schema.class_name(def.source), def.source},
             Attribute{def.name, def.target}}));
    Status added =
        catalog.AddRelation(PropertyRelationName(schema, p), std::move(scheme));
    if (!added.ok()) {
      return Status::InvalidArgument(
          "encoded relation name collides: " + PropertyRelationName(schema, p) +
          "; rename schema elements");
    }
  }
  return catalog;
}

DependencySet InducedDependencies(const Schema& schema) {
  DependencySet deps;
  for (PropertyId p = 0; p < schema.num_properties(); ++p) {
    const Schema::PropertyDef& def = schema.property(p);
    const std::string rel = PropertyRelationName(schema, p);
    deps.inds.push_back(InclusionDependency{
        rel, {schema.class_name(def.source)}, schema.class_name(def.source)});
    deps.inds.push_back(
        InclusionDependency{rel, {def.name}, schema.class_name(def.target)});
  }
  for (ClassId a = 0; a < schema.num_classes(); ++a) {
    for (ClassId b = a + 1; b < schema.num_classes(); ++b) {
      deps.disjointness.push_back(DisjointnessDependency{
          schema.class_name(a), schema.class_name(b)});
    }
  }
  return deps;
}

Result<Database> EncodeInstance(const Instance& instance) {
  const Schema& schema = instance.schema();
  SETREC_ASSIGN_OR_RETURN(Catalog catalog, EncodeCatalog(schema));
  Database db;
  for (ClassId c = 0; c < schema.num_classes(); ++c) {
    SETREC_ASSIGN_OR_RETURN(const RelationScheme* scheme,
                            catalog.Find(schema.class_name(c)));
    Relation rel(*scheme);
    for (ObjectId o : instance.objects(c)) {
      SETREC_RETURN_IF_ERROR(rel.Insert(Tuple{o}));
    }
    db.Put(schema.class_name(c), std::move(rel));
  }
  for (PropertyId p = 0; p < schema.num_properties(); ++p) {
    const std::string name = PropertyRelationName(schema, p);
    SETREC_ASSIGN_OR_RETURN(const RelationScheme* scheme, catalog.Find(name));
    Relation rel(*scheme);
    for (const auto& [src, dst] : instance.edges(p)) {
      SETREC_RETURN_IF_ERROR(rel.Insert(Tuple{src, dst}));
    }
    db.Put(name, std::move(rel));
  }
  return db;
}

Result<Instance> DecodeInstance(const Database& database,
                                const Schema& schema) {
  Instance instance(&schema);
  for (ClassId c = 0; c < schema.num_classes(); ++c) {
    SETREC_ASSIGN_OR_RETURN(const Relation* rel,
                            database.Find(schema.class_name(c)));
    if (rel->scheme().arity() != 1) {
      return Status::InvalidArgument("class relation must be unary: " +
                                     schema.class_name(c));
    }
    for (const Tuple& t : *rel) {
      SETREC_RETURN_IF_ERROR(instance.AddObject(t.at(0)));
    }
  }
  for (PropertyId p = 0; p < schema.num_properties(); ++p) {
    SETREC_ASSIGN_OR_RETURN(const Relation* rel,
                            database.Find(PropertyRelationName(schema, p)));
    if (rel->scheme().arity() != 2) {
      return Status::InvalidArgument("property relation must be binary: " +
                                     PropertyRelationName(schema, p));
    }
    for (const Tuple& t : *rel) {
      // AddEdge enforces the induced inclusion dependencies: both endpoints
      // must already be present with the declared classes.
      SETREC_RETURN_IF_ERROR(instance.AddEdge(t.at(0), p, t.at(1)));
    }
  }
  return instance;
}

}  // namespace setrec
