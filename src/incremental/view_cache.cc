#include "incremental/view_cache.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "objrel/encoding.h"

namespace setrec {

namespace {

using TupleSet = std::unordered_set<Tuple, TupleHash>;

/// Exact insert/delete delta of one plan node's output: `added` is disjoint
/// from the node's pre-refresh output, `removed` is contained in it.
struct NodeDelta {
  TupleSet added;
  TupleSet removed;

  std::size_t size() const { return added.size() + removed.size(); }
  bool empty() const { return added.empty() && removed.empty(); }

  /// Cancel-aware mutators: adding a tuple whose removal is pending (or
  /// vice versa) annihilates instead of recording both. With them, delta
  /// rules may discover the same (old, new) transition from two directions
  /// — the two-phase join does — and still emit an exact delta.
  void Add(Tuple t) {
    if (removed.erase(t) == 0) added.insert(std::move(t));
  }
  void Remove(Tuple t) {
    if (added.erase(t) == 0) removed.insert(std::move(t));
  }
};

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

/// One registered view: a compiled operator plan (children precede parents
/// in `nodes`; the root is last) plus the per-node memo state the delta
/// rules maintain — materialized outputs, join indexes keyed by the join
/// attributes, and projection support counts.
struct ViewCache::View {
  /// A resolved selection condition local to one tuple.
  struct Cond {
    bool equal;
    std::size_t ia;
    std::size_t ib;
  };
  /// A residual (non-equality) condition across a join's two sides.
  struct CrossCond {
    bool equal;
    bool a_left;
    std::size_t ia;
    bool b_left;
    std::size_t ib;
  };

  struct Node {
    enum class Kind {
      kBase,        // leaf: reads the cache's mirror relation
      kUnion,       // left ∪ right
      kDifference,  // left − right
      kJoin,        // σ-chain over a product, fused (bare products too)
      kFilter,      // σ over a non-product child (also the identity wrapper)
      kProject,     // π with support counts
      kRename,      // ρ (tuples pass through; only the scheme changes)
    };

    Kind kind;
    RelationScheme scheme;
    std::size_t left = 0;   // child for unary nodes
    std::size_t right = 0;  // second child for binary nodes

    std::string relation_name;                    // kBase
    std::vector<Cond> filter_conds;               // kFilter
    std::vector<Cond> local_left, local_right;    // kJoin per-side filters
    std::vector<CrossCond> cross;                 // kJoin residual conditions
    std::vector<std::size_t> left_key, right_key; // kJoin key projections
    std::vector<std::size_t> proj;                // kProject indices

    // Materialized output (all kinds except kBase, which aliases the
    // mirror). Handed out by Read() for the root, so refreshes clone before
    // mutating whenever a reader still holds it (copy-on-write).
    std::shared_ptr<Relation> out;
    // kJoin: side tuples passing the local filters, keyed by join key.
    std::unordered_map<Tuple, TupleSet, TupleHash> left_index, right_index;
    // kProject: pre-image count per output tuple.
    std::unordered_map<Tuple, std::size_t, TupleHash> support;
  };

  std::string name;
  ExprPtr expr;
  std::string expr_text;
  std::vector<Node> nodes;  // topological order; root = nodes.back()
  std::unordered_map<const Expr*, std::size_t> memo;
  std::set<std::string> base_rels;
  std::uint64_t cursor = 0;  // global pending index consumed up to
  bool cold = true;          // needs full rematerialization on next read
  bool stale = false;        // unconsumed pending entries touch base_rels
  std::uint64_t last_read_tick = 0;
};

namespace {

bool PassesConds(const Tuple& t, const std::vector<ViewCache::View::Cond>& cs) {
  for (const auto& c : cs) {
    if ((t.at(c.ia) == t.at(c.ib)) != c.equal) return false;
  }
  return true;
}

bool ResidualOk(const ViewCache::View::Node& n, const Tuple& l,
                const Tuple& r) {
  for (const auto& c : n.cross) {
    const ObjectId va = c.a_left ? l.at(c.ia) : r.at(c.ia);
    const ObjectId vb = c.b_left ? l.at(c.ib) : r.at(c.ib);
    if ((va == vb) != c.equal) return false;
  }
  return true;
}

/// The node's output relation for in-place mutation, cloning first when a
/// reader still holds the current storage.
Relation& MutableOut(ViewCache::View::Node& n) {
  if (n.out == nullptr) {
    n.out = std::make_shared<Relation>(n.scheme);
  } else if (n.out.use_count() > 1) {
    n.out = std::make_shared<Relation>(*n.out);
  }
  return *n.out;
}

void ApplyNodeDelta(ViewCache::View::Node& n, const NodeDelta& d) {
  if (d.empty()) return;
  Relation& out = MutableOut(n);
  for (const Tuple& t : d.removed) out.Erase(t);
  for (const Tuple& t : d.added) out.InsertValidated(t);
}

void IndexInsert(std::unordered_map<Tuple, TupleSet, TupleHash>& index,
                 Tuple key, Tuple t) {
  index[std::move(key)].insert(std::move(t));
}

void IndexErase(std::unordered_map<Tuple, TupleSet, TupleHash>& index,
                const Tuple& key, const Tuple& t) {
  auto it = index.find(key);
  if (it == index.end()) return;
  it->second.erase(t);
  if (it->second.empty()) index.erase(it);
}

/// Governance probe for refresh loops: ungoverned reads (null ctx) probe
/// nothing, governed ones enforce deadline/budget/cancellation per tuple,
/// matching the evaluator's cadence.
Status Probe(ExecContext* ctx, const char* probe_point) {
  return ctx == nullptr ? Status::OK() : ctx->CheckPoint(probe_point);
}

}  // namespace

ViewCache::ViewCache(const Schema* schema, ViewCacheOptions options)
    : schema_(schema), options_(options) {
  Result<Catalog> catalog = EncodeCatalog(*schema_);
  if (!catalog.ok()) {
    init_status_ = catalog.status();
    return;
  }
  catalog_ = std::move(catalog).value();
}

ViewCache::~ViewCache() = default;

std::uint64_t ViewCache::PendingHead() const {
  return pending_base_ + pending_.size();
}

Status ViewCache::Prime(const Instance& instance) {
  std::lock_guard<std::mutex> lock(mu_);
  SETREC_RETURN_IF_ERROR(init_status_);
  if (&instance.schema() != schema_) {
    return Status::InvalidArgument(
        "instance schema differs from the cache's schema");
  }
  TraceSpan span(options_.tracer, "incremental/prime");
  mirror_.clear();
  for (ClassId c = 0; c < schema_->num_classes(); ++c) {
    const std::string& name = schema_->class_name(c);
    SETREC_ASSIGN_OR_RETURN(const RelationScheme* scheme, catalog_.Find(name));
    auto rel = std::make_shared<Relation>(*scheme);
    rel->Reserve(instance.objects(c).size());
    for (ObjectId o : instance.objects(c)) rel->InsertValidated(Tuple{o});
    mirror_[name] = std::move(rel);
  }
  for (PropertyId p = 0; p < schema_->num_properties(); ++p) {
    const std::string name = PropertyRelationName(*schema_, p);
    SETREC_ASSIGN_OR_RETURN(const RelationScheme* scheme, catalog_.Find(name));
    auto rel = std::make_shared<Relation>(*scheme);
    rel->Reserve(instance.edges(p).size());
    for (const auto& [src, dst] : instance.edges(p)) {
      rel->InsertValidated(Tuple{src, dst});
    }
    mirror_[name] = std::move(rel);
  }
  pending_.clear();
  pending_base_ = 0;
  for (auto& [name, view] : views_) {
    view->cursor = 0;
    view->cold = true;
    view->stale = false;
  }
  primed_ = true;
  ++epoch_;
  return Status::OK();
}

Status ViewCache::ApplyDelta(const InstanceDelta& delta) {
  std::lock_guard<std::mutex> lock(mu_);
  SETREC_RETURN_IF_ERROR(init_status_);
  if (!primed_) {
    return Status::FailedPrecondition(
        "ViewCache::ApplyDelta before Prime: no base state to update");
  }
  if (delta.empty()) return Status::OK();
  TraceSpan span(options_.tracer, "incremental/apply-delta");

  // Validation pass first, so a bad delta leaves the mirror untouched. A
  // rejected delta still un-primes the cache: the publisher's instance has
  // already moved past a state we could not absorb, so continuing to serve
  // reads would silently diverge from it. Fail closed until re-Prime.
  const Status valid = [&]() -> Status {
    for (const ObjectId o : delta.removed_objects) {
      if (!schema_->HasClass(o.class_id())) {
        return Status::InvalidArgument(
            "delta removes object of unknown class");
      }
    }
    for (const ObjectId o : delta.added_objects) {
      if (!schema_->HasClass(o.class_id())) {
        return Status::InvalidArgument("delta adds object of unknown class");
      }
    }
    for (const Edge& e : delta.removed_edges) {
      if (!schema_->HasProperty(e.property)) {
        return Status::InvalidArgument(
            "delta removes edge of unknown property");
      }
      const Schema::PropertyDef& def = schema_->property(e.property);
      if (e.source.class_id() != def.source ||
          e.target.class_id() != def.target) {
        return Status::InvalidArgument("delta edge violates property domains");
      }
    }
    for (const Edge& e : delta.added_edges) {
      if (!schema_->HasProperty(e.property)) {
        return Status::InvalidArgument("delta adds edge of unknown property");
      }
      const Schema::PropertyDef& def = schema_->property(e.property);
      if (e.source.class_id() != def.source ||
          e.target.class_id() != def.target) {
        return Status::InvalidArgument("delta edge violates property domains");
      }
    }
    return Status::OK();
  }();
  if (!valid.ok()) {
    primed_ = false;
    return valid;
  }

  // Normalize against the mirror while applying: adds of present tuples and
  // removes of absent ones drop out, which is what makes a double-fed delta
  // (e.g. published by both a store hook and a txn layer) a no-op.
  PendingEntry entry;
  // Redo order: remove edges, remove objects, add objects, add edges —
  // matching ApplyDelta on instances.
  for (const Edge& e : delta.removed_edges) {
    const std::string name = PropertyRelationName(*schema_, e.property);
    Tuple t{e.source, e.target};
    if (mirror_[name]->Erase(t)) entry[name].removed.push_back(std::move(t));
  }
  for (const ObjectId o : delta.removed_objects) {
    const std::string& name = schema_->class_name(o.class_id());
    Tuple t{o};
    if (mirror_[name]->Erase(t)) entry[name].removed.push_back(std::move(t));
  }
  for (const ObjectId o : delta.added_objects) {
    const std::string& name = schema_->class_name(o.class_id());
    Tuple t{o};
    if (!mirror_[name]->Contains(t)) {
      mirror_[name]->InsertValidated(t);
      entry[name].added.push_back(std::move(t));
    }
  }
  for (const Edge& e : delta.added_edges) {
    const std::string name = PropertyRelationName(*schema_, e.property);
    Tuple t{e.source, e.target};
    if (!mirror_[name]->Contains(t)) {
      mirror_[name]->InsertValidated(t);
      entry[name].added.push_back(std::move(t));
    }
  }
  if (entry.empty()) return Status::OK();  // already absorbed

  pending_.push_back(std::move(entry));
  ++epoch_;
  // Demand-driven invalidation: mark, don't refresh.
  const PendingEntry& appended = pending_.back();
  for (auto& [name, view] : views_) {
    if (view->stale || view->cold) continue;
    for (const auto& [rel, td] : appended) {
      if (view->base_rels.count(rel) > 0) {
        view->stale = true;
        ++stats_.invalidations;
        if (options_.metrics != nullptr) {
          options_.metrics->engine.incremental_invalidations.Add(1);
        }
        break;
      }
    }
  }
  Compact();
  return Status::OK();
}

Result<std::size_t> ViewCache::BuildNode(View& view, const ExprPtr& expr) {
  auto memo_it = view.memo.find(expr.get());
  if (memo_it != view.memo.end()) return memo_it->second;

  View::Node node;
  switch (expr->op()) {
    case Expr::Op::kRelation: {
      SETREC_ASSIGN_OR_RETURN(const RelationScheme* scheme,
                              catalog_.Find(expr->relation_name()));
      node.kind = View::Node::Kind::kBase;
      node.scheme = *scheme;
      node.relation_name = expr->relation_name();
      view.base_rels.insert(expr->relation_name());
      break;
    }
    case Expr::Op::kUnion:
    case Expr::Op::kDifference: {
      SETREC_ASSIGN_OR_RETURN(std::size_t l, BuildNode(view, expr->left()));
      SETREC_ASSIGN_OR_RETURN(std::size_t r, BuildNode(view, expr->right()));
      if (!(view.nodes[l].scheme == view.nodes[r].scheme)) {
        return Status::InvalidArgument(
            "union/difference operands must have identical schemes");
      }
      node.kind = expr->op() == Expr::Op::kUnion ? View::Node::Kind::kUnion
                                                 : View::Node::Kind::kDifference;
      node.scheme = view.nodes[l].scheme;
      node.left = l;
      node.right = r;
      break;
    }
    case Expr::Op::kProduct:
    case Expr::Op::kSelectEq:
    case Expr::Op::kSelectNeq: {
      // σ-chain fusion, mirroring Evaluator::EvalSelectionChain: collect
      // the selections down to the bottom; a product bottom fuses into one
      // join node (a bare product is a join with no conditions). A chain
      // over a non-product child stays a plain filter node.
      if (expr->op() != Expr::Op::kProduct) {
        const Expr* bottom = expr.get();
        while (bottom->op() == Expr::Op::kSelectEq ||
               bottom->op() == Expr::Op::kSelectNeq) {
          bottom = bottom->child().get();
        }
        if (bottom->op() != Expr::Op::kProduct) {
          SETREC_ASSIGN_OR_RETURN(std::size_t c, BuildNode(view, expr->child()));
          const RelationScheme& cs = view.nodes[c].scheme;
          SETREC_ASSIGN_OR_RETURN(std::size_t ia, cs.IndexOf(expr->attr_a()));
          SETREC_ASSIGN_OR_RETURN(std::size_t ib, cs.IndexOf(expr->attr_b()));
          if (cs.attribute(ia).domain != cs.attribute(ib).domain) {
            return Status::InvalidArgument(
                "selection compares attributes of different domains");
          }
          node.kind = View::Node::Kind::kFilter;
          node.scheme = cs;
          node.left = c;
          node.filter_conds.push_back(
              {expr->op() == Expr::Op::kSelectEq, ia, ib});
          break;
        }
      }
      struct Condition {
        bool equal;
        std::string a;
        std::string b;
      };
      std::vector<Condition> conditions;
      const Expr* bottom = expr.get();
      while (bottom->op() == Expr::Op::kSelectEq ||
             bottom->op() == Expr::Op::kSelectNeq) {
        conditions.push_back(Condition{bottom->op() == Expr::Op::kSelectEq,
                                       bottom->attr_a(), bottom->attr_b()});
        bottom = bottom->child().get();
      }
      SETREC_ASSIGN_OR_RETURN(std::size_t l, BuildNode(view, bottom->left()));
      SETREC_ASSIGN_OR_RETURN(std::size_t r, BuildNode(view, bottom->right()));
      std::vector<Attribute> attrs = view.nodes[l].scheme.attributes();
      for (const Attribute& a : view.nodes[r].scheme.attributes()) {
        if (view.nodes[l].scheme.HasAttribute(a.name)) {
          return Status::InvalidArgument(
              "product operands share attribute name " + a.name);
        }
        attrs.push_back(a);
      }
      SETREC_ASSIGN_OR_RETURN(RelationScheme scheme,
                              RelationScheme::Make(std::move(attrs)));
      const std::size_t lw = view.nodes[l].scheme.arity();
      node.kind = View::Node::Kind::kJoin;
      node.left = l;
      node.right = r;
      for (const Condition& c : conditions) {
        SETREC_ASSIGN_OR_RETURN(std::size_t ga, scheme.IndexOf(c.a));
        SETREC_ASSIGN_OR_RETURN(std::size_t gb, scheme.IndexOf(c.b));
        if (scheme.attribute(ga).domain != scheme.attribute(gb).domain) {
          return Status::InvalidArgument(
              "selection compares attributes of different domains");
        }
        const bool a_left = ga < lw;
        const bool b_left = gb < lw;
        const std::size_t ia = a_left ? ga : ga - lw;
        const std::size_t ib = b_left ? gb : gb - lw;
        if (a_left && b_left) {
          node.local_left.push_back({c.equal, ia, ib});
        } else if (!a_left && !b_left) {
          node.local_right.push_back({c.equal, ia, ib});
        } else if (c.equal) {
          node.left_key.push_back(a_left ? ia : ib);
          node.right_key.push_back(a_left ? ib : ia);
        } else {
          node.cross.push_back({c.equal, a_left, ia, b_left, ib});
        }
      }
      node.scheme = std::move(scheme);
      break;
    }
    case Expr::Op::kProject: {
      SETREC_ASSIGN_OR_RETURN(std::size_t c, BuildNode(view, expr->child()));
      const RelationScheme& cs = view.nodes[c].scheme;
      std::vector<Attribute> attrs;
      std::set<std::string> seen;
      for (const std::string& name : expr->projection()) {
        if (!seen.insert(name).second) {
          return Status::InvalidArgument("duplicate projection attribute " +
                                         name);
        }
        SETREC_ASSIGN_OR_RETURN(std::size_t i, cs.IndexOf(name));
        node.proj.push_back(i);
        attrs.push_back(cs.attribute(i));
      }
      SETREC_ASSIGN_OR_RETURN(RelationScheme scheme,
                              RelationScheme::Make(std::move(attrs)));
      node.kind = View::Node::Kind::kProject;
      node.scheme = std::move(scheme);
      node.left = c;
      break;
    }
    case Expr::Op::kRename: {
      SETREC_ASSIGN_OR_RETURN(std::size_t c, BuildNode(view, expr->child()));
      const RelationScheme& cs = view.nodes[c].scheme;
      SETREC_ASSIGN_OR_RETURN(std::size_t i, cs.IndexOf(expr->rename_from()));
      if (cs.HasAttribute(expr->rename_to())) {
        return Status::InvalidArgument("rename target attribute " +
                                       expr->rename_to() + " already present");
      }
      std::vector<Attribute> attrs = cs.attributes();
      attrs[i].name = expr->rename_to();
      SETREC_ASSIGN_OR_RETURN(RelationScheme scheme,
                              RelationScheme::Make(std::move(attrs)));
      node.kind = View::Node::Kind::kRename;
      node.scheme = std::move(scheme);
      node.left = c;
      break;
    }
  }
  const std::size_t index = view.nodes.size();
  view.nodes.push_back(std::move(node));
  view.memo.emplace(expr.get(), index);
  return index;
}

Status ViewCache::Register(std::string name, ExprPtr expr) {
  std::lock_guard<std::mutex> lock(mu_);
  return RegisterLocked(std::move(name), std::move(expr),
                        /*evict_for_room=*/false);
}

Status ViewCache::RegisterLocked(std::string name, ExprPtr expr,
                                 bool evict_for_room) {
  SETREC_RETURN_IF_ERROR(init_status_);
  if (expr == nullptr) {
    return Status::InvalidArgument("null view expression");
  }
  std::string text = ExprToString(*expr);
  auto it = views_.find(name);
  if (it != views_.end()) {
    if (it->second->expr_text == text) return Status::OK();  // idempotent
    return Status::AlreadyExists("view " + name +
                                 " is bound to a different expression");
  }
  if (views_.size() >= options_.max_views) {
    if (!evict_for_room) {
      return Status::ResourceExhausted("view cache holds max_views views");
    }
    EvictLeastRecentlyRead();
  }
  auto view = std::make_unique<View>();
  view->name = name;
  view->expr = std::move(expr);
  view->expr_text = std::move(text);
  SETREC_ASSIGN_OR_RETURN(std::size_t root, BuildNode(*view, view->expr));
  if (view->nodes[root].kind == View::Node::Kind::kBase) {
    // A bare relation reference would alias the mutable mirror; wrap it in
    // an identity filter so the root always owns immutable output storage.
    View::Node wrapper;
    wrapper.kind = View::Node::Kind::kFilter;
    wrapper.scheme = view->nodes[root].scheme;
    wrapper.left = root;
    view->nodes.push_back(std::move(wrapper));
  }
  view->cursor = PendingHead();
  view->cold = true;
  view->last_read_tick = ++read_tick_;
  views_.emplace(std::move(name), std::move(view));
  stats_.registered_views = views_.size();
  return Status::OK();
}

bool ViewCache::Unregister(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = views_.find(name);
  if (it == views_.end()) return false;
  views_.erase(it);
  stats_.registered_views = views_.size();
  Compact();
  return true;
}

const Relation& ViewCache::NodeRel(const View& view,
                                   std::size_t index) const {
  const View::Node& n = view.nodes[index];
  if (n.kind == View::Node::Kind::kBase) {
    return *mirror_.at(n.relation_name);
  }
  return *n.out;
}

Status ViewCache::RebuildView(View& view, ExecContext* ctx) {
  TraceSpan span(options_.tracer, "incremental/rebuild");
  // Cold until the rebuild completes, so a governance stop below leaves the
  // half-built node state marked for rematerialization, never served.
  view.cold = true;
  for (View::Node& n : view.nodes) {
    if (n.kind == View::Node::Kind::kBase) continue;
    // Fresh storage per rebuild: previously handed-out snapshots keep the
    // old relation alive, untouched.
    n.out = std::make_shared<Relation>(n.scheme);
    Relation& out = *n.out;
    switch (n.kind) {
      case View::Node::Kind::kBase:
        break;
      case View::Node::Kind::kUnion: {
        const Relation& l = NodeRel(view, n.left);
        const Relation& r = NodeRel(view, n.right);
        out.Reserve(l.size() + r.size());
        for (const Tuple& t : l) {
          SETREC_RETURN_IF_ERROR(Probe(ctx, "incremental/rebuild/row"));
          out.InsertValidated(t);
        }
        for (const Tuple& t : r) {
          SETREC_RETURN_IF_ERROR(Probe(ctx, "incremental/rebuild/row"));
          out.InsertValidated(t);
        }
        break;
      }
      case View::Node::Kind::kDifference: {
        const Relation& l = NodeRel(view, n.left);
        const Relation& r = NodeRel(view, n.right);
        out.Reserve(l.size());
        for (const Tuple& t : l) {
          SETREC_RETURN_IF_ERROR(Probe(ctx, "incremental/rebuild/row"));
          if (!r.Contains(t)) out.InsertValidated(t);
        }
        break;
      }
      case View::Node::Kind::kJoin: {
        const Relation& l = NodeRel(view, n.left);
        const Relation& r = NodeRel(view, n.right);
        n.left_index.clear();
        n.right_index.clear();
        for (const Tuple& t : l) {
          SETREC_RETURN_IF_ERROR(Probe(ctx, "incremental/rebuild/build"));
          if (!PassesConds(t, n.local_left)) continue;
          IndexInsert(n.left_index, t.Project(n.left_key), t);
        }
        for (const Tuple& t : r) {
          SETREC_RETURN_IF_ERROR(Probe(ctx, "incremental/rebuild/build"));
          if (!PassesConds(t, n.local_right)) continue;
          IndexInsert(n.right_index, t.Project(n.right_key), t);
        }
        for (const auto& [key, lts] : n.left_index) {
          auto rit = n.right_index.find(key);
          if (rit == n.right_index.end()) continue;
          for (const Tuple& lt : lts) {
            for (const Tuple& rt : rit->second) {
              SETREC_RETURN_IF_ERROR(Probe(ctx, "incremental/rebuild/probe"));
              if (ResidualOk(n, lt, rt)) out.InsertValidated(lt.Concat(rt));
            }
          }
        }
        break;
      }
      case View::Node::Kind::kFilter: {
        const Relation& c = NodeRel(view, n.left);
        out.Reserve(c.size());
        for (const Tuple& t : c) {
          SETREC_RETURN_IF_ERROR(Probe(ctx, "incremental/rebuild/row"));
          if (PassesConds(t, n.filter_conds)) out.InsertValidated(t);
        }
        break;
      }
      case View::Node::Kind::kProject: {
        const Relation& c = NodeRel(view, n.left);
        n.support.clear();
        for (const Tuple& t : c) {
          SETREC_RETURN_IF_ERROR(Probe(ctx, "incremental/rebuild/row"));
          Tuple p = t.Project(n.proj);
          if (++n.support[p] == 1) out.InsertValidated(std::move(p));
        }
        break;
      }
      case View::Node::Kind::kRename: {
        const Relation& c = NodeRel(view, n.left);
        out.Reserve(c.size());
        for (const Tuple& t : c) {
          SETREC_RETURN_IF_ERROR(Probe(ctx, "incremental/rebuild/row"));
          out.InsertValidated(t);
        }
        break;
      }
    }
  }
  view.cursor = PendingHead();
  view.cold = false;
  view.stale = false;
  return Status::OK();
}

Result<ViewCache::RefreshOutcome> ViewCache::PropagateView(View& view,
                                                           ExecContext* ctx) {
  TraceSpan span(options_.tracer, "incremental/refresh");
  // The whole propagation runs in this lambda so a governance stop from a
  // probe can mark the view cold (torn node state) in exactly one place.
  Result<RefreshOutcome> outcome = [&]() -> Result<RefreshOutcome> {
  // Coalesce the unconsumed log suffix into one exact net delta per base
  // relation (adds cancel pending removes and vice versa), so a base tuple
  // that churned many times between reads is propagated at most once.
  std::map<std::string, NodeDelta, std::less<>> net;
  for (std::size_t i = view.cursor - pending_base_; i < pending_.size(); ++i) {
    for (const auto& [rel, td] : pending_[i]) {
      if (view.base_rels.count(rel) == 0) continue;
      NodeDelta& nd = net[rel];
      for (const Tuple& t : td.added) nd.Add(t);
      for (const Tuple& t : td.removed) nd.Remove(t);
    }
  }
  view.cursor = PendingHead();
  view.stale = false;
  bool any = false;
  for (const auto& [rel, nd] : net) any = any || !nd.empty();
  if (!any) return RefreshOutcome::kNoChanges;

  std::size_t rows = 0;
  std::vector<NodeDelta> deltas(view.nodes.size());
  for (std::size_t i = 0; i < view.nodes.size(); ++i) {
    View::Node& n = view.nodes[i];
    NodeDelta& d = deltas[i];
    SETREC_RETURN_IF_ERROR(Probe(ctx, "incremental/refresh/node"));
    switch (n.kind) {
      case View::Node::Kind::kBase: {
        auto it = net.find(n.relation_name);
        if (it != net.end()) d = it->second;
        break;
      }
      case View::Node::Kind::kUnion: {
        const NodeDelta& dl = deltas[n.left];
        const NodeDelta& dr = deltas[n.right];
        const Relation& l = NodeRel(view, n.left);
        const Relation& r = NodeRel(view, n.right);
        for (const Tuple& t : dl.added) {
          if (!n.out->Contains(t)) d.added.insert(t);
        }
        for (const Tuple& t : dr.added) {
          if (!n.out->Contains(t)) d.added.insert(t);
        }
        for (const Tuple& t : dl.removed) {
          if (!l.Contains(t) && !r.Contains(t)) d.removed.insert(t);
        }
        for (const Tuple& t : dr.removed) {
          if (!l.Contains(t) && !r.Contains(t)) d.removed.insert(t);
        }
        break;
      }
      case View::Node::Kind::kDifference: {
        const NodeDelta& dl = deltas[n.left];
        const NodeDelta& dr = deltas[n.right];
        const Relation& l = NodeRel(view, n.left);
        const Relation& r = NodeRel(view, n.right);
        // Additions: fresh left tuples not (any longer) in the right side,
        // plus surviving left tuples the right side released.
        for (const Tuple& t : dl.added) {
          if (!r.Contains(t)) d.added.insert(t);
        }
        for (const Tuple& t : dr.removed) {
          if (l.Contains(t)) d.added.insert(t);
        }
        // Removals: departed left tuples and newly shadowing right tuples,
        // restricted to what the old output actually contained.
        for (const Tuple& t : dl.removed) {
          if (n.out->Contains(t)) d.removed.insert(t);
        }
        for (const Tuple& t : dr.added) {
          if (n.out->Contains(t)) d.removed.insert(t);
        }
        break;
      }
      case View::Node::Kind::kJoin: {
        const NodeDelta& dl = deltas[n.left];
        const NodeDelta& dr = deltas[n.right];
        // Phase 1 — left delta against the *old* right index:
        // Δout = ΔL ⋈ R_old, maintaining the left index along the way.
        for (const Tuple& t : dl.removed) {
          SETREC_RETURN_IF_ERROR(Probe(ctx, "incremental/refresh/probe"));
          if (!PassesConds(t, n.local_left)) continue;
          Tuple key = t.Project(n.left_key);
          auto rit = n.right_index.find(key);
          if (rit != n.right_index.end()) {
            for (const Tuple& rt : rit->second) {
              if (ResidualOk(n, t, rt)) d.Remove(t.Concat(rt));
            }
          }
          IndexErase(n.left_index, key, t);
        }
        for (const Tuple& t : dl.added) {
          SETREC_RETURN_IF_ERROR(Probe(ctx, "incremental/refresh/probe"));
          if (!PassesConds(t, n.local_left)) continue;
          Tuple key = t.Project(n.left_key);
          auto rit = n.right_index.find(key);
          if (rit != n.right_index.end()) {
            for (const Tuple& rt : rit->second) {
              if (ResidualOk(n, t, rt)) d.Add(t.Concat(rt));
            }
          }
          IndexInsert(n.left_index, std::move(key), t);
        }
        // Phase 2 — right delta against the *new* left index:
        // Δout += L_new ⋈ ΔR. The cancel-aware Add/Remove make the
        // (added-left, removed-right) pairs — added in phase 1, dead in
        // the new state — annihilate instead of double-reporting.
        for (const Tuple& t : dr.removed) {
          SETREC_RETURN_IF_ERROR(Probe(ctx, "incremental/refresh/probe"));
          if (!PassesConds(t, n.local_right)) continue;
          Tuple key = t.Project(n.right_key);
          auto lit = n.left_index.find(key);
          if (lit != n.left_index.end()) {
            for (const Tuple& lt : lit->second) {
              if (ResidualOk(n, lt, t)) d.Remove(lt.Concat(t));
            }
          }
          IndexErase(n.right_index, key, t);
        }
        for (const Tuple& t : dr.added) {
          SETREC_RETURN_IF_ERROR(Probe(ctx, "incremental/refresh/probe"));
          if (!PassesConds(t, n.local_right)) continue;
          Tuple key = t.Project(n.right_key);
          auto lit = n.left_index.find(key);
          if (lit != n.left_index.end()) {
            for (const Tuple& lt : lit->second) {
              if (ResidualOk(n, lt, t)) d.Add(lt.Concat(t));
            }
          }
          IndexInsert(n.right_index, std::move(key), t);
        }
        break;
      }
      case View::Node::Kind::kFilter: {
        const NodeDelta& dc = deltas[n.left];
        for (const Tuple& t : dc.added) {
          if (PassesConds(t, n.filter_conds)) d.added.insert(t);
        }
        for (const Tuple& t : dc.removed) {
          if (PassesConds(t, n.filter_conds)) d.removed.insert(t);
        }
        break;
      }
      case View::Node::Kind::kProject: {
        const NodeDelta& dc = deltas[n.left];
        // Batch the support-count changes per output tuple before deciding
        // membership transitions, so a projection that loses one pre-image
        // and gains another emits no spurious delta.
        std::unordered_map<Tuple, std::int64_t, TupleHash> change;
        for (const Tuple& t : dc.added) ++change[t.Project(n.proj)];
        for (const Tuple& t : dc.removed) --change[t.Project(n.proj)];
        for (auto& [p, c] : change) {
          if (c == 0) continue;
          auto sit = n.support.find(p);
          const std::int64_t old_count =
              sit == n.support.end() ? 0
                                     : static_cast<std::int64_t>(sit->second);
          const std::int64_t new_count = old_count + c;
          if (new_count <= 0) {
            if (sit != n.support.end()) n.support.erase(sit);
          } else if (sit != n.support.end()) {
            sit->second = static_cast<std::size_t>(new_count);
          } else {
            n.support.emplace(p, static_cast<std::size_t>(new_count));
          }
          if (old_count == 0 && new_count > 0) d.added.insert(p);
          if (old_count > 0 && new_count <= 0) d.removed.insert(p);
        }
        break;
      }
      case View::Node::Kind::kRename: {
        d = deltas[n.left];
        break;
      }
    }
    rows += d.size();
    if (ctx != nullptr) {
      SETREC_RETURN_IF_ERROR(
          ctx->ChargeRows(d.size(), "incremental/refresh/rows"));
    }
    if (rows > options_.max_delta_rows_per_refresh) {
      return RefreshOutcome::kOverBudget;  // node state is torn
    }
    ApplyNodeDelta(n, d);
  }
  stats_.delta_rows += rows;
  if (options_.metrics != nullptr) {
    options_.metrics->engine.incremental_delta_rows.Add(rows);
  }
  return RefreshOutcome::kPropagated;
  }();
  if (!outcome.ok()) view.cold = true;
  return outcome;
}

Result<std::shared_ptr<const Relation>> ViewCache::Read(std::string_view name,
                                                        ExecContext* ctx) {
  std::lock_guard<std::mutex> lock(mu_);
  return ReadLocked(name, ctx);
}

Result<std::shared_ptr<const Relation>> ViewCache::ReadLocked(
    std::string_view name, ExecContext* ctx) {
  SETREC_RETURN_IF_ERROR(init_status_);
  if (!primed_) {
    return Status::FailedPrecondition(
        "ViewCache::Read before Prime: no base state to materialize from");
  }
  auto it = views_.find(name);
  if (it == views_.end()) {
    return Status::NotFound("no view named " + std::string(name));
  }
  View& view = *it->second;
  view.last_read_tick = ++read_tick_;
  const std::uint64_t start = NowNs();
  if (view.cold || view.cursor < pending_base_) {
    // Cold start, or the pending log was compacted past this view's cursor
    // (it lagged more than max_pending commits behind): rematerialize.
    const bool forced = !view.cold;
    SETREC_RETURN_IF_ERROR(RebuildView(view, ctx));
    ++stats_.rebuilds;
    if (forced) {
      ++stats_.fallbacks;
      if (options_.metrics != nullptr) {
        options_.metrics->engine.incremental_fallbacks.Add(1);
      }
    }
    if (options_.metrics != nullptr) {
      options_.metrics->engine.incremental_refresh_ns.Observe(NowNs() - start);
    }
  } else if (view.cursor < PendingHead()) {
    SETREC_ASSIGN_OR_RETURN(const RefreshOutcome refreshed,
                            PropagateView(view, ctx));
    switch (refreshed) {
      case RefreshOutcome::kPropagated:
        ++stats_.refreshes;
        if (options_.metrics != nullptr) {
          options_.metrics->engine.incremental_refreshes.Add(1);
          options_.metrics->engine.incremental_refresh_ns.Observe(NowNs() -
                                                                  start);
        }
        break;
      case RefreshOutcome::kOverBudget:
        // Abandoned mid-flight; node state is torn — rematerialize.
        SETREC_RETURN_IF_ERROR(RebuildView(view, ctx));
        ++stats_.rebuilds;
        ++stats_.fallbacks;
        if (options_.metrics != nullptr) {
          options_.metrics->engine.incremental_fallbacks.Add(1);
          options_.metrics->engine.incremental_refresh_ns.Observe(NowNs() -
                                                                  start);
        }
        break;
      case RefreshOutcome::kNoChanges:
        // The unconsumed suffix did not touch this view's relations (or
        // cancelled out exactly): the demand-driven win — no node work.
        ++stats_.hits;
        if (options_.metrics != nullptr) {
          options_.metrics->engine.incremental_hits.Add(1);
        }
        break;
    }
  } else {
    ++stats_.hits;
    if (options_.metrics != nullptr) {
      options_.metrics->engine.incremental_hits.Add(1);
    }
  }
  Compact();
  return std::shared_ptr<const Relation>(view.nodes.back().out);
}

Result<std::shared_ptr<const Relation>> ViewCache::Query(const ExprPtr& expr,
                                                         ExecContext* ctx) {
  std::lock_guard<std::mutex> lock(mu_);
  SETREC_RETURN_IF_ERROR(init_status_);
  if (expr == nullptr) {
    return Status::InvalidArgument("null view expression");
  }
  std::string name = ExprToString(*expr);
  SETREC_RETURN_IF_ERROR(
      RegisterLocked(name, expr, /*evict_for_room=*/true));
  return ReadLocked(name, ctx);
}

void ViewCache::Compact() {
  // Drop the log prefix every registered view has consumed.
  std::uint64_t min_cursor = PendingHead();
  for (const auto& [name, view] : views_) {
    min_cursor = std::min(min_cursor, view->cursor);
  }
  while (pending_base_ < min_cursor && !pending_.empty()) {
    pending_.pop_front();
    ++pending_base_;
  }
  // Bound the log regardless of laggards; views left behind go cold and
  // rebuild on their next read (detected via cursor < pending_base_).
  while (pending_.size() > options_.max_pending) {
    pending_.pop_front();
    ++pending_base_;
  }
}

void ViewCache::EvictLeastRecentlyRead() {
  auto victim = views_.end();
  for (auto it = views_.begin(); it != views_.end(); ++it) {
    if (victim == views_.end() ||
        it->second->last_read_tick < victim->second->last_read_tick) {
      victim = it;
    }
  }
  if (victim != views_.end()) {
    views_.erase(victim);
    ++stats_.evictions;
    stats_.registered_views = views_.size();
  }
}

bool ViewCache::primed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return primed_;
}

std::uint64_t ViewCache::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

ViewCache::Stats ViewCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<std::string> ViewCache::ViewNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(views_.size());
  for (const auto& [name, view] : views_) out.push_back(name);
  return out;
}

Result<std::vector<Receiver>> ReceiversFromView(
    ViewCache& cache, const ExprPtr& query, const MethodSignature& signature,
    ExecContext* ctx) {
  SETREC_ASSIGN_OR_RETURN(std::shared_ptr<const Relation> result,
                          cache.Query(query, ctx));
  if (result->scheme().arity() != signature.size()) {
    return Status::InvalidArgument(
        "query result arity does not match the method signature");
  }
  for (std::size_t i = 0; i < signature.size(); ++i) {
    if (result->scheme().attribute(i).domain != signature.class_at(i)) {
      return Status::InvalidArgument(
          "query result domain does not match the signature at position " +
          std::to_string(i));
    }
  }
  std::vector<Receiver> receivers;
  receivers.reserve(result->size());
  // Canonical order, matching ReceiversFromQuery: the receiver list feeds
  // sequential application, whose result may depend on enumeration order.
  for (const Tuple* t : result->SortedTuples()) {
    receivers.push_back(Receiver::Unchecked(t->values()));
  }
  return receivers;
}

}  // namespace setrec
