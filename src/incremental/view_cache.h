#ifndef SETREC_INCREMENTAL_VIEW_CACHE_H_
#define SETREC_INCREMENTAL_VIEW_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/exec_options.h"
#include "core/instance.h"
#include "core/receiver.h"
#include "core/schema.h"
#include "core/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "relational/expression.h"
#include "relational/relation.h"
#include "relational/schema.h"

namespace setrec {

/// Tuning knobs and observability sinks for a ViewCache. Everything is
/// borrowed, not owned; the referents must outlive the cache.
struct ViewCacheOptions {
  /// Cap on buffered delta entries. When the pending log would exceed this,
  /// the oldest entries are dropped; views that had not consumed them go
  /// cold and rematerialize from scratch on their next read.
  std::size_t max_pending = 4096;

  /// Per-refresh propagation budget in delta rows summed over all plan
  /// nodes. A refresh that exceeds it abandons propagation and falls back
  /// to full rematerialization (counted in Stats::fallbacks) — past this
  /// point the incremental work costs more than rebuilding.
  std::size_t max_delta_rows_per_refresh = std::size_t{1} << 20;

  /// Cap on registered views. Query() evicts the least-recently-read view
  /// to stay under it; Register() fails with kResourceExhausted instead
  /// (explicit registrations are pinned by intent).
  std::size_t max_views = 256;

  MetricsRegistry* metrics = nullptr;  // incremental.* instruments
  Tracer* tracer = nullptr;            // incremental/* spans
};

/// Incrementally maintained materialized views over the relational encoding
/// of one object-base instance (Section 5.1), in the discipline of
/// *Demand-Driven Incremental Object Queries* (Liu et al.): committed
/// `InstanceDelta`s are absorbed eagerly into a base-relation mirror in
/// O(|delta|), while registered views are refreshed lazily — a delta only
/// marks dependent views stale, and the delta rules (insert/delete deltas
/// propagated through union/difference/join/select/project/rename nodes,
/// with per-node join indexes and projection support counts) run on the
/// next read of each view. Untouched views cost nothing; a view whose
/// referenced relations saw no changes answers a read in O(1).
///
/// Correctness contract: a Read() of a registered view is bit-identical to
/// from-scratch `Evaluate(expr, EncodeInstance(instance))` over the
/// instance state the cache has been fed (the from-scratch path remains the
/// differential-testing oracle). Fed deltas must be *closed* the way
/// `DiffInstances` produces them: an object removal is accompanied by
/// removals of its incident edges. Deltas are normalized against the
/// mirror, so re-feeding an already-absorbed delta is a harmless no-op —
/// double publication from stacked commit paths cannot corrupt a view.
///
/// Thread safety: all public methods are safe to call concurrently (one
/// internal mutex). Returned relations are immutable snapshots: a refresh
/// never mutates a relation a previous Read() handed out (copy-on-write).
class ViewCache : public DeltaSink {
 public:
  /// Implementation detail (a registered view's compiled plan plus memo
  /// state), defined in the .cc; public only so file-local helpers there
  /// can name its nested types.
  struct View;

  /// Monotonic counters describing the cache's life so far.
  struct Stats {
    std::uint64_t hits = 0;           // reads answered without node work
    std::uint64_t refreshes = 0;      // reads that propagated deltas
    std::uint64_t rebuilds = 0;       // full rematerializations (any cause)
    std::uint64_t fallbacks = 0;      // rebuilds forced by budget/log overrun
    std::uint64_t invalidations = 0;  // view dirty-markings by ApplyDelta
    std::uint64_t delta_rows = 0;     // delta rows propagated through nodes
    std::uint64_t evictions = 0;      // views evicted by the max_views LRU
    std::size_t registered_views = 0;
  };

  /// The schema must outlive the cache. Construction never fails, but a
  /// schema whose encoded relation names collide (see EncodeCatalog) makes
  /// every subsequent operation report the collision.
  explicit ViewCache(const Schema* schema, ViewCacheOptions options = {});
  ~ViewCache();

  ViewCache(const ViewCache&) = delete;
  ViewCache& operator=(const ViewCache&) = delete;

  /// (Re)builds the base-relation mirror from a full instance state and
  /// resets the delta log; every registered view goes cold and
  /// rematerializes on its next read. Called once after recovery (and again
  /// after any out-of-band state replacement, e.g. a replica resync).
  Status Prime(const Instance& instance);

  /// Absorbs one committed delta: updates the mirror in O(|delta|), appends
  /// the normalized per-relation tuple delta to the pending log, bumps the
  /// epoch, and marks views whose referenced relations were touched as
  /// stale. No view is refreshed here — that happens on demand, at Read().
  ///
  /// Fails closed: a delta that does not validate against the schema or the
  /// mirror's current state (beyond the harmless already-absorbed case that
  /// normalization cancels) un-primes the cache — reads then fail with
  /// kFailedPrecondition until the next Prime() — rather than risk serving
  /// views that have silently diverged from the authoritative instance.
  Status ApplyDelta(const InstanceDelta& delta) override;

  ViewCache* AsViewCache() override { return this; }

  /// Registers `expr` as a materialized view under `name`. Validates the
  /// expression against the encoded catalog (unknown relations or scheme
  /// violations fail here, leaving callers to fall back to from-scratch
  /// evaluation). Idempotent for the same name/expression pair; a name
  /// collision with a different expression is kAlreadyExists. Registration
  /// is cheap — the view materializes on first read.
  Status Register(std::string name, ExprPtr expr);

  /// Drops a view; returns whether it existed.
  bool Unregister(std::string_view name);

  /// Returns the view's current contents, refreshing on demand: cold views
  /// rematerialize, stale views propagate the coalesced net delta through
  /// their plan, views with no relevant pending changes return immediately.
  /// Requires a primed cache (kFailedPrecondition otherwise). When `ctx` is
  /// given, refresh work runs under its governance — per-tuple probe points
  /// enforce deadlines, step budgets, cancellation and injected faults
  /// exactly like from-scratch evaluation; an interrupted refresh leaves
  /// the view cold (it rebuilds on the next read) and returns the
  /// governance error.
  Result<std::shared_ptr<const Relation>> Read(std::string_view name,
                                               ExecContext* ctx = nullptr);

  /// Register-if-needed + Read, keyed by the expression's printed form —
  /// the ad-hoc entry point used by the server's query path. Subject to the
  /// max_views LRU. `ctx` governs the refresh as in Read().
  Result<std::shared_ptr<const Relation>> Query(const ExprPtr& expr,
                                                ExecContext* ctx = nullptr);

  bool primed() const;
  /// Bumped by every Prime and every non-empty ApplyDelta.
  std::uint64_t epoch() const;
  Stats stats() const;
  std::vector<std::string> ViewNames() const;

 private:
  /// Normalized per-relation tuple delta of one absorbed InstanceDelta:
  /// exact with respect to the mirror state it was applied to (added tuples
  /// were absent, removed tuples present).
  struct TupleDelta {
    std::vector<Tuple> added;
    std::vector<Tuple> removed;
  };
  using PendingEntry = std::map<std::string, TupleDelta, std::less<>>;

  enum class RefreshOutcome {
    kNoChanges,   // unconsumed suffix did not touch this view: a hit
    kPropagated,  // delta rules ran; the view is current
    kOverBudget,  // abandoned mid-flight; node state is torn — rebuild
  };

  Status RegisterLocked(std::string name, ExprPtr expr, bool evict_for_room);
  Result<std::shared_ptr<const Relation>> ReadLocked(std::string_view name,
                                                     ExecContext* ctx);
  Result<std::size_t> BuildNode(View& view, const ExprPtr& expr);
  Status RebuildView(View& view, ExecContext* ctx);
  /// Propagates the view's coalesced net delta through its plan. Non-OK =
  /// a governance stop from `ctx`; the view was left cold.
  Result<RefreshOutcome> PropagateView(View& view, ExecContext* ctx);
  const Relation& NodeRel(const View& view, std::size_t index) const;
  std::uint64_t PendingHead() const;
  void Compact();
  void EvictLeastRecentlyRead();

  const Schema* schema_;
  ViewCacheOptions options_;
  Status init_status_;
  Catalog catalog_;

  mutable std::mutex mu_;
  bool primed_ = false;
  std::uint64_t epoch_ = 0;
  std::uint64_t read_tick_ = 0;
  // Mutable mirror of the encoded instance; always holds every catalog
  // relation once primed. Mutated in place (never handed out).
  std::map<std::string, std::shared_ptr<Relation>, std::less<>> mirror_;
  // Pending log; pending_[i] has global index pending_base_ + i. Views
  // remember the global index they have consumed up to.
  std::deque<PendingEntry> pending_;
  std::uint64_t pending_base_ = 0;
  std::map<std::string, std::unique_ptr<View>, std::less<>> views_;
  Stats stats_;
};

/// Phase-one of a set-oriented update through the cache: evaluates the
/// receiver query as a (registered-on-demand) view and checks the result
/// against the method signature, mirroring ReceiversFromQuery. Callers fall
/// back to the from-scratch path on any error — except governance errors
/// from `ctx`, which they must propagate.
Result<std::vector<Receiver>> ReceiversFromView(
    ViewCache& cache, const ExprPtr& query, const MethodSignature& signature,
    ExecContext* ctx = nullptr);

}  // namespace setrec

#endif  // SETREC_INCREMENTAL_VIEW_CACHE_H_
