#include "store/durable_store.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <utility>
#include <vector>

#include "incremental/view_cache.h"
#include "store/snapshot.h"
#include "text/parser.h"
#include "text/printer.h"

namespace setrec {

namespace {

constexpr const char* kWalFileName = "wal.log";

std::string WalPath(const std::string& dir) {
  return (std::filesystem::path(dir) / kWalFileName).string();
}

std::string SnapshotPath(const std::string& dir, std::uint64_t sequence) {
  char name[64];
  std::snprintf(name, sizeof name, "snapshot-%020" PRIu64 ".snap", sequence);
  return (std::filesystem::path(dir) / name).string();
}

constexpr const char* kCommitFlightFile = "flight-commit.jsonl";
constexpr const char* kRecoveryFlightFile = "flight-recovery.jsonl";

std::string FlightPath(const std::string& dir, const char* file) {
  return (std::filesystem::path(dir) / file).string();
}

/// Snapshot files present in `dir` with the sequence parsed from the name,
/// newest first. Files that do not match the naming scheme are ignored.
std::vector<std::pair<std::uint64_t, std::string>> ListSnapshots(
    const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    std::uint64_t sequence = 0;
    if (std::sscanf(name.c_str(), "snapshot-%" SCNu64 ".snap", &sequence) ==
        1) {
      out.emplace_back(sequence, entry.path().string());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return out;
}

}  // namespace

DurableStore::DurableStore(std::string dir, const Schema* schema,
                           DurableStoreOptions options)
    : dir_(std::move(dir)),
      schema_(schema),
      options_(options),
      instance_(schema) {}

DurableStore::~DurableStore() = default;

Result<std::unique_ptr<DurableStore>> DurableStore::Open(
    const std::string& dir, const Schema* schema, DurableStoreOptions options,
    RecoveryReport* report) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create store directory '" + dir +
                            "': " + ec.message());
  }
  std::unique_ptr<DurableStore> store(
      new DurableStore(dir, schema, options));
  TraceSpan recovery_span(options.tracer, "store/recovery");
  RecoveryReport local_report;
  RecoveryReport& rep = report != nullptr ? *report : local_report;
  rep = RecoveryReport{};

  // 1. Newest snapshot that validates; corrupt ones are passed over (and
  //    counted) so one bad checkpoint never blocks recovery.
  for (const auto& [sequence, path] : ListSnapshots(dir)) {
    Result<SnapshotData> snapshot = ReadSnapshot(path, schema);
    if (snapshot.ok()) {
      store->instance_ = std::move(snapshot->instance);
      rep.snapshot_loaded = true;
      rep.snapshot_sequence = snapshot->sequence;
      break;
    }
    ++rep.snapshots_skipped;
  }
  std::uint64_t last_sequence = rep.snapshot_sequence;

  // 2. Replay the longest valid WAL prefix on top of the snapshot. Each
  //    record is an exec probe point, so the fault matrix can crash recovery
  //    *mid-replay* and prove that recovering from the interrupted recovery
  //    still reaches the same committed prefix (replay mutates only the
  //    in-memory instance; the log is untouched until the writer opens).
  SETREC_ASSIGN_OR_RETURN(WalReplay replay, ReadWal(WalPath(dir)));
  rep.torn_tail = replay.torn_tail;
  rep.detail = replay.tail_reason;
  std::uint64_t writer_valid_bytes = replay.valid_bytes;
  for (std::size_t i = 0; i < replay.records.size(); ++i) {
    if (options.injector != nullptr) {
      SETREC_RETURN_IF_ERROR(options.injector->Probe("store/recovery/replay"));
    }
    const WalRecord& record = replay.records[i];
    if (record.sequence <= rep.snapshot_sequence) {
      ++rep.skipped_records;  // crash between snapshot publish and truncate
      continue;
    }
    if (record.sequence != last_sequence + 1) {
      // The log resumes past the snapshot's coverage: the intervening
      // records were truncated away and this snapshot cannot bridge them.
      // Recover what the snapshot proves and drop the rest, loudly.
      rep.torn_tail = true;
      rep.detail = "sequence gap after snapshot";
      writer_valid_bytes = i == 0 ? 0 : replay.record_ends[i - 1];
      break;
    }
    Result<InstanceDelta> delta = ParseDelta(record.payload, schema);
    Status applied = delta.ok() ? ApplyDelta(store->instance_, *delta)
                                : delta.status();
    if (!applied.ok()) {
      // CRC-valid but semantically unusable (wrong schema, foreign file):
      // same contract as a torn tail — stop at the last good record.
      rep.torn_tail = true;
      rep.detail = "unreplayable record: " + applied.ToString();
      writer_valid_bytes = i == 0 ? 0 : replay.record_ends[i - 1];
      break;
    }
    last_sequence = record.sequence;
    ++rep.replayed_records;
  }
  rep.dropped_bytes = replay.total_bytes - writer_valid_bytes;
  rep.last_sequence = last_sequence;

  // Leave the recovery audit in the flight recorder, and surface the dump
  // that explains this directory's most recent failure: an anomalous
  // recovery writes its own snapshot; a clean recovery after a commit-time
  // fault points at the dump that commit left behind.
  if (options.recorder != nullptr) {
    options.recorder->Record(FlightRecorder::EventKind::kNote,
                             "store/recovery", rep.replayed_records,
                             rep.last_sequence);
    if (rep.snapshots_skipped != 0) {
      options.recorder->Record(FlightRecorder::EventKind::kNote,
                               "store/recovery-snapshot-skipped",
                               rep.snapshots_skipped);
    }
    if (rep.torn_tail) {
      options.recorder->Record(FlightRecorder::EventKind::kStatus,
                               "store/recovery-torn-tail", rep.dropped_bytes,
                               rep.last_sequence, rep.detail);
    }
    if (rep.torn_tail || rep.snapshots_skipped != 0) {
      const std::string path = FlightPath(dir, kRecoveryFlightFile);
      FlightRecorder::DumpOptions dump;
      const std::string reason =
          "recovery anomaly: " +
          (rep.detail.empty() ? std::string("snapshot skipped") : rep.detail);
      dump.reason = reason;
      if (options.recorder->DumpToFile(path, dump)) {
        rep.flight_dump_path = path;
      }
    }
  }
  if (rep.flight_dump_path.empty()) {
    const std::string commit_dump = FlightPath(dir, kCommitFlightFile);
    std::error_code exists_ec;
    if (std::filesystem::exists(commit_dump, exists_ec)) {
      rep.flight_dump_path = commit_dump;
    }
  }

  // 3. Position the writer after the last good record. The probe sits just
  //    before the only step of recovery that writes to the directory (the
  //    writer truncates the torn tail), covering a crash at that boundary.
  if (options.injector != nullptr) {
    SETREC_RETURN_IF_ERROR(options.injector->Probe("store/recovery/position"));
  }
  SETREC_ASSIGN_OR_RETURN(
      store->wal_, WalWriter::Open(WalPath(dir), writer_valid_bytes,
                                   last_sequence + 1, options.injector));
  store->wal_.set_metrics(options.metrics);
  // Recovery settled the authoritative state; only now may the view cache
  // (re)build its mirror from it. A commit the WAL never acknowledged was
  // dropped above, so its effects can never surface through a view. A
  // failed Prime leaves the cache unprimed and failing closed — advisory.
  if (options.view_cache != nullptr) {
    (void)options.view_cache->Prime(store->instance_);
  }
  return store;
}

Status DurableStore::Commit(const Statement& statement) {
  std::lock_guard<std::mutex> lock(mu_);
  return CommitLocked(statement);
}

Status DurableStore::Commit(const Statement& statement,
                            const ExecContext::Limits& limits) {
  std::lock_guard<std::mutex> lock(mu_);
  return CommitLocked(statement, &limits);
}

Status DurableStore::CommitLocked(const Statement& statement,
                                  const ExecContext::Limits* limits) {
  if (wal_.broken()) {
    return Status::FailedPrecondition(
        "store hit a storage fault; reopen to recover");
  }
  const CommitHook hook = [this](const Instance& before,
                                 const Instance& after) -> Status {
    const InstanceDelta delta = DiffInstances(before, after);
    if (delta.empty()) return Status::OK();  // no-op statement, no record
    SETREC_RETURN_IF_ERROR(
        wal_.Append(DeltaToText(delta, *schema_)).status());
    {
      // The durability point itself: traced so a slow disk is visible as a
      // wal/fsync span inside the request's timeline.
      TraceSpan fsync_span(options_.tracer, "wal/fsync");
      SETREC_RETURN_IF_ERROR(wal_.Sync());
    }
    // Durable as of the fsync above; only now may a view see it. Advisory:
    // a cache that cannot absorb the delta fails closed on its own.
    if (options_.view_cache != nullptr) {
      (void)options_.view_cache->ApplyDelta(delta);
    }
    return Status::OK();
  };
  TraceSpan commit_span(options_.tracer, "store/commit");
  if (options_.recorder != nullptr) {
    options_.recorder->Record(FlightRecorder::EventKind::kNote,
                              "store/commit", wal_.next_sequence());
  }
  const auto commit_start = std::chrono::steady_clock::now();
  RetrySchedule schedule(options_.retry);
  for (;;) {
    ExecContext ctx(limits != nullptr ? *limits : options_.limits);
    if (options_.injector != nullptr) {
      ctx.set_fault_injector(options_.injector);
    }
    ctx.set_tracer(options_.tracer);
    ctx.set_metrics(options_.metrics);
    ctx.set_recorder(options_.recorder);
    Status status = statement(instance_, ctx, hook);
    if (status.ok()) break;
    // A storage fault is a simulated crash: never retried, store poisoned.
    if (wal_.broken()) return DumpTerminalFailure("storage fault", status);
    if (!schedule.ShouldRetry(status)) {
      return DumpTerminalFailure("statement failed", status);
    }
    const std::chrono::nanoseconds delay = schedule.NextDelay();
    if (delay > std::chrono::nanoseconds::zero()) {
      std::this_thread::sleep_for(delay);
    }
  }
  if (options_.metrics != nullptr) {
    options_.metrics->engine.store_commits.Add(1);
    options_.metrics->engine.commit_ns.Observe(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - commit_start)
            .count()));
  }
  ++commits_since_checkpoint_;
  if (options_.snapshot_every_n_commits != 0 &&
      commits_since_checkpoint_ >= options_.snapshot_every_n_commits) {
    return CheckpointLocked();
  }
  return Status::OK();
}

Status DurableStore::CommitBatch(std::span<const Statement> statements,
                                 std::vector<Status>* results) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Status> local_results;
  std::vector<Status>& res = results != nullptr ? *results : local_results;
  res.assign(statements.size(), Status::OK());
  if (statements.empty()) return Status::OK();
  if (wal_.broken()) {
    const Status broken = Status::FailedPrecondition(
        "store hit a storage fault; reopen to recover");
    res.assign(statements.size(), broken);
    return broken;
  }
  TraceSpan batch_span(options_.tracer, "store/commit-batch");
  if (options_.recorder != nullptr) {
    options_.recorder->Record(FlightRecorder::EventKind::kNote,
                              "store/commit-batch", statements.size(),
                              wal_.next_sequence());
  }
  const auto batch_start = std::chrono::steady_clock::now();
  // Rollback point for the crash case: a storage fault voids the whole
  // batch, so the in-memory state must return to before the first statement.
  const Instance before_batch = instance_;
  // Append-only hook: the fsync is hoisted out of the loop below. Deltas
  // are staged, not published — nothing in the batch is durable until the
  // single covering fsync succeeds.
  std::vector<InstanceDelta> staged_deltas;
  const CommitHook hook = [this, &staged_deltas](
                              const Instance& before,
                              const Instance& after) -> Status {
    InstanceDelta delta = DiffInstances(before, after);
    if (delta.empty()) return Status::OK();  // no-op statement, no record
    SETREC_RETURN_IF_ERROR(
        wal_.Append(DeltaToText(delta, *schema_)).status());
    staged_deltas.push_back(std::move(delta));
    return Status::OK();
  };
  std::uint64_t committed = 0;
  for (std::size_t i = 0; i < statements.size(); ++i) {
    ExecContext ctx(options_.limits);
    if (options_.injector != nullptr) {
      ctx.set_fault_injector(options_.injector);
    }
    ctx.set_tracer(options_.tracer);
    ctx.set_metrics(options_.metrics);
    ctx.set_recorder(options_.recorder);
    res[i] = statements[i](instance_, ctx, hook);
    if (res[i].ok()) {
      ++committed;
    } else if (wal_.broken()) {
      break;  // torn append = crash: handled below
    }
    // Non-storage failure: the statement contract restored its own
    // pre-state; its batch mates are unaffected.
  }
  if (!wal_.broken() && committed != 0) {
    // One fsync covers every record appended above; only now is any
    // statement of the batch acknowledged.
    TraceSpan fsync_span(options_.tracer, "wal/fsync");
    Status synced = wal_.Sync();
    (void)synced;  // a failure shows as wal_.broken() below
  }
  if (wal_.broken()) {
    instance_ = before_batch;
    Status fault = Status::FailedPrecondition(
        "storage fault during group commit; batch voided, reopen to recover");
    for (Status& r : res) r = fault;
    return DumpTerminalFailure("storage fault", fault);
  }
  if (options_.view_cache != nullptr) {
    // The batch fsync covered every staged record: publish in commit order.
    for (const InstanceDelta& delta : staged_deltas) {
      (void)options_.view_cache->ApplyDelta(delta);
    }
  }
  if (options_.metrics != nullptr) {
    options_.metrics->engine.store_commits.Add(committed);
    options_.metrics->engine.commit_ns.Observe(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - batch_start)
            .count()));
  }
  commits_since_checkpoint_ += committed;
  if (options_.snapshot_every_n_commits != 0 &&
      commits_since_checkpoint_ >= options_.snapshot_every_n_commits) {
    return CheckpointLocked();
  }
  return Status::OK();
}

Status DurableStore::DumpTerminalFailure(const char* what,
                                         const Status& status) const {
  if (options_.recorder != nullptr) {
    options_.recorder->Record(FlightRecorder::EventKind::kStatus, what,
                              static_cast<std::uint64_t>(status.code()),
                              wal_.next_sequence(), status.message());
    FlightRecorder::DumpOptions dump;
    const std::string reason = std::string(what) + ": " + status.ToString();
    dump.reason = reason;
    (void)options_.recorder->DumpToFile(FlightPath(dir_, kCommitFlightFile),
                                        dump);
  }
  return status;
}

Status DurableStore::Update(PropertyId property,
                            const ExprPtr& receiver_query) {
  return Commit([&](Instance& instance, ExecContext& ctx,
                    const CommitHook& commit) {
    return SetOrientedUpdateInPlace(instance, property, receiver_query, ctx,
                                    commit);
  });
}

Status DurableStore::Delete(ClassId cls, const RowPredicate& pred) {
  return Commit(
      [&](Instance& instance, ExecContext& ctx, const CommitHook& commit) {
        return SetOrientedDeleteInPlace(instance, cls, pred, ctx, commit);
      });
}

Status DurableStore::ApplyCursorUpdate(const AlgebraicUpdateMethod& method,
                                       std::span<const Receiver> order) {
  return Commit([&](Instance& instance, ExecContext& ctx,
                    const CommitHook& commit) -> Status {
    SETREC_ASSIGN_OR_RETURN(Instance after,
                            CursorUpdate(method, instance, order, ctx));
    SETREC_RETURN_IF_ERROR(commit(instance, after));
    instance = std::move(after);
    return Status::OK();
  });
}

Status DurableStore::ApplyCursorDelete(ClassId cls, const RowPredicate& pred,
                                       std::span<const ObjectId> order) {
  return Commit([&](Instance& instance, ExecContext& ctx,
                    const CommitHook& commit) -> Status {
    SETREC_ASSIGN_OR_RETURN(Instance after,
                            CursorDelete(instance, cls, pred, order, ctx));
    SETREC_RETURN_IF_ERROR(commit(instance, after));
    instance = std::move(after);
    return Status::OK();
  });
}

Status DurableStore::Mutate(
    const std::function<Status(Instance&, ExecContext&)>& body) {
  return Commit([&](Instance& instance, ExecContext& ctx,
                    const CommitHook& commit) -> Status {
    Instance before = instance;
    Status status = body(instance, ctx);
    if (status.ok()) status = commit(before, instance);
    if (!status.ok()) {
      instance = std::move(before);
      return status;
    }
    return Status::OK();
  });
}

Status DurableStore::Checkpoint() {
  std::lock_guard<std::mutex> lock(mu_);
  return CheckpointLocked();
}

Status DurableStore::CheckpointLocked() {
  if (wal_.broken()) {
    return Status::FailedPrecondition(
        "store hit a storage fault; reopen to recover");
  }
  TraceSpan span(options_.tracer, "store/checkpoint");
  const std::uint64_t sequence = wal_.next_sequence() - 1;
  SETREC_RETURN_IF_ERROR(WriteSnapshot(SnapshotPath(dir_, sequence), instance_,
                                       sequence, options_.injector));
  commits_since_checkpoint_ = 0;
  if (options_.metrics != nullptr) {
    options_.metrics->engine.store_checkpoints.Add(1);
  }
  if (!options_.truncate_wal_on_checkpoint) return Status::OK();
  // The snapshot now covers every logged record: start a fresh WAL, then
  // prune snapshots made redundant by the new one.
  SETREC_ASSIGN_OR_RETURN(
      wal_, WalWriter::Open(WalPath(dir_), 0, sequence + 1,
                            options_.injector));
  wal_.set_metrics(options_.metrics);
  const auto snapshots = ListSnapshots(dir_);
  for (std::size_t i = options_.keep_snapshots; i < snapshots.size(); ++i) {
    std::error_code ec;
    std::filesystem::remove(snapshots[i].second, ec);
  }
  return Status::OK();
}

Instance DurableStore::SnapshotState(std::uint64_t* sequence) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (sequence != nullptr) *sequence = wal_.next_sequence() - 1;
  return instance_;
}

std::uint64_t DurableStore::last_sequence() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wal_.next_sequence() - 1;
}

bool DurableStore::broken() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wal_.broken();
}

}  // namespace setrec
