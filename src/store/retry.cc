#include "store/retry.h"

namespace setrec {

namespace {

/// SplitMix64 (the library-wide deterministic generator).
std::uint64_t NextRandom(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

RetryPolicy NormalizeRetryPolicy(RetryPolicy policy) {
  if (policy.max_attempts == 0) policy.max_attempts = 1;
  if (policy.base_delay < std::chrono::nanoseconds::zero()) {
    policy.base_delay = std::chrono::nanoseconds::zero();
  }
  if (policy.max_delay < std::chrono::nanoseconds::zero()) {
    policy.max_delay = std::chrono::nanoseconds::zero();
  }
  if (policy.max_delay < policy.base_delay) {
    policy.max_delay = policy.base_delay;
  }
  // NaN compares false against everything, so the `< 1.0` test alone would
  // let it through; catch it via self-inequality.
  if (!(policy.multiplier >= 1.0)) policy.multiplier = 1.0;
  return policy;
}

RetrySchedule::RetrySchedule(const RetryPolicy& policy)
    : policy_(NormalizeRetryPolicy(policy)),
      current_base_(policy_.base_delay),
      rng_state_(policy_.jitter_seed) {}

bool RetrySchedule::ShouldRetry(const Status& status) {
  if (!status.IsRetryable()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (attempts_used_ >= policy_.max_attempts) return false;
  ++attempts_used_;
  return true;
}

std::uint32_t RetrySchedule::attempts_used() const {
  std::lock_guard<std::mutex> lock(mu_);
  return attempts_used_;
}

std::chrono::nanoseconds RetrySchedule::NextDelay() {
  std::lock_guard<std::mutex> lock(mu_);
  std::chrono::nanoseconds base = current_base_;
  if (base > policy_.max_delay) base = policy_.max_delay;
  // Advance the exponential base for the next round, saturating at the cap
  // (and against overflow of the multiplication).
  const double grown =
      static_cast<double>(current_base_.count()) * policy_.multiplier;
  current_base_ = grown >= static_cast<double>(policy_.max_delay.count())
                      ? policy_.max_delay
                      : std::chrono::nanoseconds(
                            static_cast<std::chrono::nanoseconds::rep>(grown));
  if (!policy_.jitter) return base;
  // Jitter into [base/2, base): full determinism from the seed, while
  // keeping at least half the backoff so retries cannot stampede.
  const double u =
      static_cast<double>(NextRandom(rng_state_) >> 11) * 0x1.0p-53;
  return std::chrono::nanoseconds(static_cast<std::chrono::nanoseconds::rep>(
      static_cast<double>(base.count()) * (0.5 + u / 2.0)));
}

}  // namespace setrec
