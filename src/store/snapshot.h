#ifndef SETREC_STORE_SNAPSHOT_H_
#define SETREC_STORE_SNAPSHOT_H_

#include <cstdint>
#include <string>

#include "core/fault_injection.h"
#include "core/instance.h"
#include "core/status.h"

namespace setrec {

/// Full-instance checkpoints. A snapshot file is a one-line header followed
/// by the text-format instance (text/printer.h):
///
///   setrec-snapshot v1 seq=<u64> len=<bytes> crc=<hex8>
///   instance { ... }
///
/// `len` and `crc` cover the body, so a torn or bit-rotted snapshot is
/// detected (kCorruptedLog) and recovery falls back to an older snapshot or
/// to an empty instance plus full WAL replay. Snapshots are written to a
/// temporary file, fsynced, and renamed into place — a crash mid-write never
/// clobbers the previous snapshot. After the rename the *parent directory*
/// is fsynced too: the rename itself lives in the directory's metadata, and
/// without the directory sync a power failure can roll the publish back
/// even though the data blocks survived. Recovery tolerates either outcome
/// (the snapshot is present, or the previous state plus the WAL is), which
/// the crash-probe between rename and directory-sync proves.

struct SnapshotData {
  Instance instance;
  /// The WAL sequence this snapshot covers: replay resumes at sequence + 1.
  std::uint64_t sequence = 0;
};

/// Writes a snapshot atomically (tmp file, fsync, rename, directory fsync).
/// `injector`, when given, is consulted at the exec probe point
/// "snapshot/dirsync" *between* the rename and the directory sync — the
/// crash window the durability tests must cover.
Status WriteSnapshot(const std::string& path, const Instance& instance,
                     std::uint64_t sequence,
                     FaultInjector* injector = nullptr);

/// Reads and validates a snapshot. Header/length/CRC defects and body parse
/// failures return kCorruptedLog; a missing file returns kNotFound.
Result<SnapshotData> ReadSnapshot(const std::string& path,
                                  const Schema* schema);

}  // namespace setrec

#endif  // SETREC_STORE_SNAPSHOT_H_
