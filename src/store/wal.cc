#include "store/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <utility>

namespace setrec {

namespace {

constexpr std::size_t kHeaderBytes = 16;
/// Sanity cap on a single payload: a length field larger than this is
/// treated as corruption, not an allocation request.
constexpr std::uint32_t kMaxPayloadBytes = 1u << 30;

std::array<std::uint32_t, 256> MakeCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

void PutU32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

void PutU64(std::string& out, std::uint64_t v) {
  PutU32(out, static_cast<std::uint32_t>(v & 0xffffffffu));
  PutU32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t GetU32(const char* p) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

std::uint64_t GetU64(const char* p) {
  return static_cast<std::uint64_t>(GetU32(p)) |
         static_cast<std::uint64_t>(GetU32(p + 4)) << 32;
}

/// CRC over the sequence (in its little-endian wire form) then the payload,
/// so both are integrity-protected by one checksum.
std::uint32_t RecordCrc(std::uint64_t sequence, std::string_view payload) {
  std::string seq_bytes;
  seq_bytes.reserve(8);
  PutU64(seq_bytes, sequence);
  return Crc32(payload, Crc32(seq_bytes));
}

std::string EncodeRecord(std::uint64_t sequence, std::string_view payload) {
  std::string out;
  out.reserve(kHeaderBytes + payload.size());
  PutU32(out, static_cast<std::uint32_t>(payload.size()));
  PutU32(out, RecordCrc(sequence, payload));
  PutU64(out, sequence);
  out.append(payload);
  return out;
}

Status IoError(const std::string& what, const std::string& path) {
  return Status::Internal(what + " '" + path + "': " + std::strerror(errno));
}

}  // namespace

Status FsyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::Internal("cannot open directory '" + dir +
                            "' for fsync: " + std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::Internal("cannot fsync directory '" + dir +
                            "': " + std::strerror(errno));
  }
  return Status::OK();
}

std::uint32_t Crc32(std::string_view data, std::uint32_t crc) {
  static const std::array<std::uint32_t, 256> kTable = MakeCrcTable();
  crc = ~crc;
  for (char ch : data) {
    crc = kTable[(crc ^ static_cast<unsigned char>(ch)) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

Result<WalReplay> ReadWal(const std::string& path) {
  WalReplay replay;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (errno == ENOENT) return replay;  // no log yet: empty replay
    return IoError("cannot open WAL", path);
  }
  std::string bytes;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    bytes.append(buf, n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return IoError("cannot read WAL", path);

  replay.file_present = true;
  replay.total_bytes = bytes.size();
  std::uint64_t offset = 0;
  auto stop = [&](const char* reason) {
    replay.torn_tail = true;
    replay.tail_reason = reason;
  };
  while (offset < bytes.size()) {
    const std::uint64_t remaining = bytes.size() - offset;
    if (remaining < kHeaderBytes) {
      stop("short header");
      break;
    }
    const char* header = bytes.data() + offset;
    const std::uint32_t length = GetU32(header);
    const std::uint32_t crc = GetU32(header + 4);
    const std::uint64_t sequence = GetU64(header + 8);
    if (length > kMaxPayloadBytes || length > remaining - kHeaderBytes) {
      stop("short record");
      break;
    }
    std::string_view payload(bytes.data() + offset + kHeaderBytes, length);
    if (RecordCrc(sequence, payload) != crc) {
      stop("bad crc");
      break;
    }
    if (!replay.records.empty() &&
        sequence != replay.records.back().sequence + 1) {
      stop("sequence break");
      break;
    }
    offset += kHeaderBytes + length;
    replay.records.push_back(WalRecord{sequence, std::string(payload)});
    replay.record_ends.push_back(offset);
    replay.valid_bytes = offset;
  }
  return replay;
}

WalWriter::~WalWriter() { Close(); }

WalWriter::WalWriter(WalWriter&& other) noexcept { *this = std::move(other); }

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this == &other) return *this;
  Close();
  file_ = std::exchange(other.file_, nullptr);
  path_ = std::move(other.path_);
  next_sequence_ = other.next_sequence_;
  synced_bytes_ = other.synced_bytes_;
  written_bytes_ = other.written_bytes_;
  injector_ = std::exchange(other.injector_, nullptr);
  metrics_ = std::exchange(other.metrics_, nullptr);
  broken_ = other.broken_;
  return *this;
}

void WalWriter::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Result<WalWriter> WalWriter::Open(const std::string& path,
                                  std::uint64_t valid_bytes,
                                  std::uint64_t next_sequence,
                                  FaultInjector* injector) {
  // Drop any torn tail before appending: new records must start at the end
  // of the last good one.
  std::error_code ec;
  const std::uint64_t existing =
      std::filesystem::exists(path, ec)
          ? static_cast<std::uint64_t>(std::filesystem::file_size(path, ec))
          : 0;
  if (existing > valid_bytes) {
    std::filesystem::resize_file(path, valid_bytes, ec);
    if (ec) {
      return Status::Internal("cannot truncate WAL '" + path +
                              "': " + ec.message());
    }
    // The truncation must be durable before new records land after it: if
    // the shrunk length were lost in a crash, stale torn bytes would
    // resurface *after* fresh appends and corrupt the log mid-stream. Sync
    // the file's data/metadata and the directory entry. The probe covers a
    // crash inside this window.
    if (injector != nullptr) {
      SETREC_RETURN_IF_ERROR(injector->Probe("wal/truncate-dirsync"));
    }
    const int fd = ::open(path.c_str(), O_RDWR);
    if (fd < 0) return IoError("cannot open truncated WAL for fsync", path);
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) return IoError("cannot fsync truncated WAL", path);
    const std::filesystem::path parent =
        std::filesystem::path(path).parent_path();
    SETREC_RETURN_IF_ERROR(
        FsyncDir(parent.empty() ? std::string(".") : parent.string()));
  }
  WalWriter w;
  w.file_ = std::fopen(path.c_str(), "ab");
  if (w.file_ == nullptr) return IoError("cannot open WAL for append", path);
  w.path_ = path;
  w.next_sequence_ = next_sequence;
  w.synced_bytes_ = valid_bytes;
  w.written_bytes_ = valid_bytes;
  w.injector_ = injector;
  return w;
}

Result<std::uint64_t> WalWriter::Append(std::string_view payload) {
  if (file_ == nullptr || broken_) {
    return Status::FailedPrecondition(
        "WAL writer is closed or broken; reopen the store to recover");
  }
  std::string record = EncodeRecord(next_sequence_, payload);
  std::size_t persist = record.size();
  bool tear = false;
  if (injector_ != nullptr) {
    const StorageFaultPlan plan = injector_->StorageProbe("wal/append");
    switch (plan.kind) {
      case StorageFaultKind::kNone:
        break;
      case StorageFaultKind::kTornWrite:
        persist = static_cast<std::size_t>(
            plan.byte_offset < record.size() ? plan.byte_offset
                                             : record.size());
        tear = true;
        break;
      case StorageFaultKind::kBitFlip:
        record[plan.byte_offset % record.size()] ^=
            static_cast<char>(plan.bit_mask);
        break;
      case StorageFaultKind::kPartialFsync:
        // A sync-time fault requested on an append: treat the append as the
        // crash point with nothing persisted.
        persist = 0;
        tear = true;
        break;
    }
  }
  if (persist > 0 &&
      std::fwrite(record.data(), 1, persist, file_) != persist) {
    broken_ = true;
    return IoError("WAL append failed", path_);
  }
  if (tear) {
    // The torn bytes must actually reach the medium (the recovery test reads
    // them back), but the writer is dead from here on.
    std::fflush(file_);
    broken_ = true;
    return Status::Internal("injected torn write: " +
                            std::to_string(persist) + " of " +
                            std::to_string(record.size()) +
                            " bytes persisted");
  }
  written_bytes_ += record.size();
  if (metrics_ != nullptr) {
    metrics_->engine.wal_appends.Add(1);
    metrics_->engine.wal_bytes.Add(record.size());
  }
  return next_sequence_++;
}

Status WalWriter::Sync() {
  if (file_ == nullptr || broken_) {
    return Status::FailedPrecondition(
        "WAL writer is closed or broken; reopen the store to recover");
  }
  if (injector_ != nullptr) {
    const StorageFaultPlan plan = injector_->StorageProbe("wal/sync");
    if (plan.kind == StorageFaultKind::kPartialFsync) {
      // The unsynced tail never reached the medium: drop it and die.
      std::fflush(file_);
      broken_ = true;
      std::error_code ec;
      std::filesystem::resize_file(path_, synced_bytes_, ec);
      return Status::Internal(
          "injected partial fsync: unsynced tail dropped at byte " +
          std::to_string(synced_bytes_));
    }
  }
  if (std::fflush(file_) != 0) {
    broken_ = true;
    return IoError("WAL flush failed", path_);
  }
  if (fsync(fileno(file_)) != 0) {
    broken_ = true;
    return IoError("WAL fsync failed", path_);
  }
  synced_bytes_ = written_bytes_;
  if (metrics_ != nullptr) metrics_->engine.wal_fsyncs.Add(1);
  return Status::OK();
}

}  // namespace setrec
