#ifndef SETREC_STORE_RETRY_H_
#define SETREC_STORE_RETRY_H_

#include <chrono>
#include <cstdint>
#include <mutex>

#include "core/status.h"

namespace setrec {

/// Bounded exponential backoff with deterministic seeded jitter.
///
/// The durable store retries statements that failed with a *retryable*
/// governance code (Status::IsRetryable: kResourceExhausted or
/// kDeadlineExceeded) — a transiently exhausted ExecContext should not abort
/// a commit. Everything else (semantic errors, cancellation, corruption,
/// storage faults) fails immediately.
///
/// Delays are fully determined by the policy and the seed: attempt k waits
///   min(max_delay, base_delay * multiplier^(k-1)) * (1/2 + u_k/2)
/// where u_k in [0, 1) is drawn from a SplitMix64 stream — no global RNG, no
/// distribution types with unspecified output, so schedules are reproducible
/// bit-for-bit across platforms. With `jitter` off the (1/2 + u_k/2) factor
/// is dropped and attempt k waits the exact capped exponential delay — still
/// deterministic, now also seed-independent.
struct RetryPolicy {
  /// Total attempts including the first; 1 disables retrying.
  std::uint32_t max_attempts = 1;
  std::chrono::nanoseconds base_delay{0};
  std::chrono::nanoseconds max_delay{std::chrono::milliseconds(100)};
  double multiplier = 2.0;
  /// Spread each delay into [delay/2, delay) from the seeded stream. On by
  /// default: concurrent retriers sharing a policy must not stampede.
  bool jitter = true;
  std::uint64_t jitter_seed = 0;
};

/// Returns `policy` with pathological fields clamped to the nearest sane
/// value, so a miswritten config degrades to a working schedule instead of
/// negative sleeps or a division-flavored surprise:
///   max_attempts 0        -> 1 (the initial attempt always runs)
///   base_delay < 0        -> 0
///   max_delay < 0         -> 0
///   max_delay < base_delay -> max_delay = base_delay (cap never undercuts)
///   multiplier < 1 or NaN -> 1 (backoff never shrinks)
/// RetrySchedule applies this on construction; it is exposed for tests and
/// for callers that want to inspect the effective policy.
RetryPolicy NormalizeRetryPolicy(RetryPolicy policy);

/// The mutable iteration state for one governed operation: consult
/// ShouldRetry after each failure; when it grants a retry, wait NextDelay()
/// (the store sleeps it; tests use base_delay zero and just record it).
///
/// Thread-safe: the network client hands one schedule to many worker threads
/// that retry independently, so the attempt counter and the jitter stream
/// are guarded by a mutex. Determinism survives sharing — with a fixed
/// `jitter_seed` the *multiset* of delays handed out across all threads is
/// exactly the single-threaded delay sequence (each NextDelay() call draws
/// the next element of one seeded stream; only the thread interleaving
/// varies). The lock is uncontended-cheap and only ever held for a few
/// arithmetic operations, never across a sleep.
class RetrySchedule {
 public:
  explicit RetrySchedule(const RetryPolicy& policy);

  /// True when `status` is retryable and attempts remain; consumes one
  /// attempt when granting.
  bool ShouldRetry(const Status& status);

  /// The backoff before the upcoming attempt. Advances the jitter stream, so
  /// call once per granted retry.
  std::chrono::nanoseconds NextDelay();

  std::uint32_t attempts_used() const;

 private:
  mutable std::mutex mu_;
  RetryPolicy policy_;
  std::uint32_t attempts_used_ = 1;  // the initial attempt; guarded by mu_
  std::chrono::nanoseconds current_base_;  // guarded by mu_
  std::uint64_t rng_state_;                // guarded by mu_
};

}  // namespace setrec

#endif  // SETREC_STORE_RETRY_H_
