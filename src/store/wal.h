#ifndef SETREC_STORE_WAL_H_
#define SETREC_STORE_WAL_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "core/fault_injection.h"
#include "core/status.h"
#include "obs/metrics.h"

namespace setrec {

/// Checksummed, length-prefixed, monotonically-sequenced write-ahead log.
///
/// On-disk record layout (little-endian, 16-byte header + payload):
///
///   u32 payload length | u32 CRC-32 over (sequence ‖ payload) | u64 sequence
///   | payload bytes
///
/// Sequences are strictly consecutive within a file. The *reader* is the
/// crash-consistency workhorse: any defect — a short header, a payload that
/// runs past end-of-file, a CRC mismatch, a sequence break — terminates
/// replay at the end of the last good record (the longest valid prefix)
/// instead of failing, and the replay report says exactly how many bytes
/// were dropped and why. This is what makes a torn tail (a record half
/// written when the process died) a recoverable, reportable event rather
/// than data loss of the whole log.
///
/// The *writer* consults an optional FaultInjector before every physical
/// append and fsync (probe points "wal/append", "wal/sync"), letting tests
/// tear a write at any byte, drop an unsynced tail, or flip a bit — see
/// StorageFaultKind. After a torn write or failed sync the writer is broken:
/// further operations refuse, as the process would be dead at that point.

/// CRC-32 (IEEE 802.3 polynomial, bit-reflected), seedable for chaining.
std::uint32_t Crc32(std::string_view data, std::uint32_t crc = 0);

/// fsyncs directory `dir` itself. A rename or truncation performed inside a
/// directory lives in the directory's metadata; until the directory entry is
/// synced a power failure can undo the publish even though the file's data
/// blocks survived. Every rename/truncate-for-durability in the store layer
/// is followed by this call.
Status FsyncDir(const std::string& dir);

struct WalRecord {
  std::uint64_t sequence = 0;
  std::string payload;
};

/// Outcome of scanning a WAL file.
struct WalReplay {
  /// False when no file existed at the path. A missing-but-expected log and
  /// a zero-length log are both *clean* empty replays (no torn tail): an
  /// empty file is exactly what a crash between file creation and the first
  /// append leaves behind, and a store that never committed has no log at
  /// all. Neither relies on the longest-valid-prefix machinery.
  bool file_present = false;
  std::vector<WalRecord> records;
  /// Byte offsets one-past-the-end of each good record (parallel to
  /// `records`) — the commit points a torn-tail test truncates between.
  std::vector<std::uint64_t> record_ends;
  /// File size and the prefix of it that held valid records.
  std::uint64_t total_bytes = 0;
  std::uint64_t valid_bytes = 0;
  /// True when trailing bytes were dropped; `tail_reason` says why replay
  /// stopped ("short header", "short record", "bad crc", "sequence break").
  bool torn_tail = false;
  std::string tail_reason;

  std::uint64_t dropped_bytes() const { return total_bytes - valid_bytes; }
};

/// Scans `path`, returning every record of the longest valid prefix. A
/// missing file is an empty (OK) replay; only an unreadable file is an
/// error. Never fails on corrupt content — corruption truncates the replay
/// and is reported in the result.
Result<WalReplay> ReadWal(const std::string& path);

class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();
  WalWriter(WalWriter&& other) noexcept;
  WalWriter& operator=(WalWriter&& other) noexcept;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens `path` for appending, first truncating it to `valid_bytes` (the
  /// longest valid prefix found by ReadWal) so a torn tail is never appended
  /// after. The first Append is stamped `next_sequence`.
  static Result<WalWriter> Open(const std::string& path,
                                std::uint64_t valid_bytes,
                                std::uint64_t next_sequence,
                                FaultInjector* injector = nullptr);

  /// Encodes and appends one record, consuming the next sequence number.
  /// Returns the sequence stamped on the record. Not yet durable — call
  /// Sync() to make it so.
  Result<std::uint64_t> Append(std::string_view payload);

  /// Flushes and fsyncs everything appended so far. Durability point: a
  /// commit is acknowledged only after its record's Sync succeeded.
  Status Sync();

  std::uint64_t next_sequence() const { return next_sequence_; }
  /// True after a storage fault; the writer refuses further work and the
  /// store must be reopened (recovered) to continue.
  bool broken() const { return broken_; }

  /// Binds a metrics registry (nullptr detaches; must outlive the writer):
  /// successful appends count into wal.appends/wal.bytes, successful syncs
  /// into wal.fsyncs.
  void set_metrics(MetricsRegistry* metrics) { metrics_ = metrics; }

  void Close();

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  std::uint64_t next_sequence_ = 1;
  /// Bytes known durable (synced); a partial-fsync fault truncates back to
  /// this offset, modeling lost page cache.
  std::uint64_t synced_bytes_ = 0;
  std::uint64_t written_bytes_ = 0;
  FaultInjector* injector_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
  bool broken_ = false;
};

}  // namespace setrec

#endif  // SETREC_STORE_WAL_H_
