#ifndef SETREC_STORE_DURABLE_STORE_H_
#define SETREC_STORE_DURABLE_STORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/exec_context.h"
#include "core/instance.h"
#include "sql/engine.h"
#include "store/retry.h"
#include "store/wal.h"

namespace setrec {

/// What Open() recovered and what it had to drop. "Recovered exactly the
/// last committed state" is the durability contract; this report is the
/// audit trail proving which commits that covers.
struct RecoveryReport {
  /// True when a valid snapshot seeded recovery (else: empty instance).
  bool snapshot_loaded = false;
  std::uint64_t snapshot_sequence = 0;
  /// Snapshot files that failed validation and were passed over.
  std::uint32_t snapshots_skipped = 0;
  /// WAL records applied on top of the snapshot.
  std::uint64_t replayed_records = 0;
  /// Valid records at or below the snapshot sequence (already covered).
  std::uint64_t skipped_records = 0;
  /// Bytes of WAL dropped as a torn tail or trailing corruption.
  std::uint64_t dropped_bytes = 0;
  bool torn_tail = false;
  /// Why replay stopped early, when it did ("bad crc", "short record", ...).
  std::string detail;
  /// Highest sequence in the recovered state; the next commit is stamped
  /// last_sequence + 1.
  std::uint64_t last_sequence = 0;
  /// Flight-recorder JSONL snapshot explaining the most recent failure:
  /// when recovery itself found an anomaly (torn tail, skipped snapshot)
  /// this is the dump recovery wrote; otherwise it points at the dump a
  /// failing commit left behind in the store directory, when one exists.
  /// Empty = clean history, nothing to explain.
  std::string flight_dump_path;
};

struct DurableStoreOptions {
  /// Take a checkpoint automatically after this many effective commits
  /// (0 = only explicit Checkpoint() calls).
  std::uint64_t snapshot_every_n_commits = 0;
  /// Truncate the WAL after a successful checkpoint. Turning this off keeps
  /// the full log, so recovery stays possible even if every snapshot file is
  /// lost — the crash-recovery tests use it to exercise that fallback.
  bool truncate_wal_on_checkpoint = true;
  /// Snapshot files retained after a checkpoint (older ones are pruned).
  std::uint32_t keep_snapshots = 2;
  /// Per-attempt resource budget for statements (default: permissive).
  ExecContext::Limits limits;
  /// Backoff for statements that failed with a retryable governance code.
  RetryPolicy retry;
  /// Consulted at every exec probe point *and* every WAL append/fsync
  /// (storage faults). Must outlive the store.
  FaultInjector* injector = nullptr;
  /// Observability sinks (borrowed; must outlive the store). The tracer
  /// records store/recovery, store/commit and store/checkpoint spans; the
  /// metrics registry counts commits, checkpoints, WAL appends/bytes/fsyncs
  /// and commit latencies. Both propagate into the per-attempt ExecContext,
  /// so engine spans nest under the commit span.
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;
  /// Flight recorder (always on by default). Every commit attempt records
  /// into it; any *terminal* non-OK statement status — a storage fault, an
  /// injected crash, a non-retryable engine error — dumps a redacted JSONL
  /// snapshot to <dir>/flight-commit.jsonl before the error returns, and
  /// recovery anomalies dump to <dir>/flight-recovery.jsonl (see
  /// RecoveryReport::flight_dump_path). Null disables recording and dumps.
  FlightRecorder* recorder = &FlightRecorder::Global();
  /// Incremental view cache to keep in lockstep with the durable state
  /// (borrowed; must outlive the store). Open() primes it from the
  /// recovered instance after WAL replay, and each commit publishes its
  /// delta only after the covering fsync succeeded — the cache can lag the
  /// durable state (and then fails closed) but can never run ahead of it:
  /// a commit that was never acknowledged is never visible through a view.
  ViewCache* view_cache = nullptr;
};

/// A crash-consistent wrapper around Instance: every committed SQL-engine
/// statement is persisted as a checksummed WAL record (the statement's
/// canonical InstanceDelta in text form) before it is acknowledged, and
/// periodic snapshots bound replay time. Open() recovers the newest valid
/// snapshot plus the longest valid WAL prefix, tolerating a torn tail.
///
/// Commit protocol (per statement):
///   1. run the statement in memory — the engine's all-or-nothing snapshot
///      semantics apply, governed by a fresh ExecContext per attempt;
///   2. through the engine's CommitHook, append diff(before, after) to the
///      WAL and fsync — only then is the commit acknowledged;
///   3. a hook failure (torn write, failed fsync) vetoes the statement: the
///      in-memory state rolls back to the pre-statement instance and the
///      store refuses further commits until reopened, exactly as if the
///      process had died at the fault.
/// Retryable governance failures (kResourceExhausted, kDeadlineExceeded) are
/// retried per the RetryPolicy with deterministic backoff; semantic errors,
/// cancellation, and storage faults are not.
///
/// All public methods are serialized by an internal mutex, so a background
/// thread may call Checkpoint() while another commits (the FaultInjector's
/// atomic counters make a shared injector safe too).
class DurableStore {
 public:
  /// A statement body: mutate the instance under `ctx`, calling `commit`
  /// exactly once with (before, after) on success, and leaving the instance
  /// at `before` on any failure. The engine's *InPlace statements have this
  /// exact shape.
  using Statement =
      std::function<Status(Instance&, ExecContext&, const CommitHook&)>;

  /// Opens (creating or recovering) the store in directory `dir`. When
  /// `report` is non-null it receives the recovery audit trail.
  static Result<std::unique_ptr<DurableStore>> Open(
      const std::string& dir, const Schema* schema,
      DurableStoreOptions options = {}, RecoveryReport* report = nullptr);

  ~DurableStore();
  DurableStore(const DurableStore&) = delete;
  DurableStore& operator=(const DurableStore&) = delete;

  // -- Committed statements ---------------------------------------------------

  /// Set-oriented UPDATE (Section 7), durably committed.
  Status Update(PropertyId property, const ExprPtr& receiver_query);

  /// Set-oriented DELETE, durably committed.
  Status Delete(ClassId cls, const RowPredicate& pred);

  /// Cursor UPDATE: sequential application of `method` in `order`.
  Status ApplyCursorUpdate(const AlgebraicUpdateMethod& method,
                           std::span<const Receiver> order);

  /// Cursor DELETE in `order` (default: sorted rows of `cls`).
  Status ApplyCursorDelete(ClassId cls, const RowPredicate& pred,
                           std::span<const ObjectId> order = {});

  /// Arbitrary mutation as one committed statement: `body` edits the
  /// instance; on any failure the pre-statement state is restored; on
  /// success the delta is logged and fsynced before Mutate returns OK.
  Status Mutate(const std::function<Status(Instance&, ExecContext&)>& body);

  /// Runs a caller-shaped statement through the commit protocol.
  Status Commit(const Statement& statement);

  /// Commit with a per-statement resource budget overriding the store-wide
  /// `options.limits` for this one statement. This is how a network
  /// request's deadline reaches the ExecContext governing its execution:
  /// the server clamps `limits.deadline` to the request's remaining time and
  /// every engine probe point then enforces it.
  Status Commit(const Statement& statement, const ExecContext::Limits& limits);

  /// Group commit: runs the statements in order under one lock acquisition,
  /// appending each statement's delta to the WAL *without* syncing, then
  /// issues a single fsync covering the whole batch — durability cost is one
  /// fsync amortized over the batch instead of one per statement.
  ///
  /// Per-statement semantics stay intact: a statement that fails for a
  /// non-storage reason (semantic error, exhausted budget) appends nothing,
  /// leaves the instance at its pre-statement state, and does not disturb
  /// its batch mates — its status lands in `results` and the batch moves
  /// on. There is deliberately no retry loop here: group-commit callers (the
  /// transaction layer) own retries, and re-running a stale statement inside
  /// the batch would commit against state it never saw.
  ///
  /// A storage fault anywhere (torn append or the batch fsync) fails the
  /// *whole* batch: the in-memory instance rolls back to the pre-batch
  /// state, the store is poisoned until reopened, and every slot of
  /// `results` reports the fault — exactly the crash model, where none of
  /// the batch was acknowledged but a prefix of its records may still be
  /// replayed on recovery (statement boundaries are record boundaries, so
  /// recovery always lands on a statement prefix, never a hybrid).
  ///
  /// Returns OK when the batch mechanics succeeded (even if individual
  /// statements failed semantically); `results`, when non-null, is resized
  /// to `statements.size()`.
  Status CommitBatch(std::span<const Statement> statements,
                     std::vector<Status>* results = nullptr);

  // -- Checkpoints ------------------------------------------------------------

  /// Writes a snapshot at the current sequence and (per options) truncates
  /// the WAL and prunes old snapshots. Safe to call from another thread.
  Status Checkpoint();

  // -- Observers --------------------------------------------------------------

  /// Copy of the current committed state (taken under the store mutex).
  /// When `sequence` is non-null it receives the last acknowledged commit
  /// sequence *of that same state* — one atomic read, so a replication
  /// snapshot is always labeled with exactly the sequence it covers.
  Instance SnapshotState(std::uint64_t* sequence = nullptr) const;

  /// Borrowed view for single-threaded use; not synchronized against a
  /// concurrent Checkpoint/Commit from another thread.
  const Instance& instance() const { return instance_; }

  /// Sequence of the last acknowledged commit (0 = none ever).
  std::uint64_t last_sequence() const;

  /// True after a storage fault: commits are refused until the directory is
  /// reopened (recovered).
  bool broken() const;

  const std::string& dir() const { return dir_; }

 private:
  DurableStore(std::string dir, const Schema* schema,
               DurableStoreOptions options);

  Status CheckpointLocked();
  /// `limits` overrides options_.limits when non-null (per-request budgets).
  Status CommitLocked(const Statement& statement,
                      const ExecContext::Limits* limits = nullptr);

  /// Records a terminal (non-retried) commit failure and dumps the flight
  /// recorder to <dir>/flight-commit.jsonl; returns `status` unchanged.
  Status DumpTerminalFailure(const char* what, const Status& status) const;

  const std::string dir_;
  const Schema* schema_;
  DurableStoreOptions options_;
  mutable std::mutex mu_;
  Instance instance_;
  WalWriter wal_;
  std::uint64_t commits_since_checkpoint_ = 0;
};

}  // namespace setrec

#endif  // SETREC_STORE_DURABLE_STORE_H_
