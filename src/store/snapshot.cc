#include "store/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "store/wal.h"
#include "text/parser.h"
#include "text/printer.h"

namespace setrec {

namespace {

std::string HeaderLine(std::uint64_t sequence, const std::string& body) {
  char header[128];
  std::snprintf(header, sizeof header,
                "setrec-snapshot v1 seq=%" PRIu64 " len=%zu crc=%08x\n",
                sequence, body.size(), Crc32(body));
  return header;
}

}  // namespace

Status WriteSnapshot(const std::string& path, const Instance& instance,
                     std::uint64_t sequence, FaultInjector* injector) {
  const std::string body = InstanceToText(instance);
  const std::string header = HeaderLine(sequence, body);
  const std::string tmp_path = path + ".tmp";
  std::FILE* f = std::fopen(tmp_path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot create snapshot '" + tmp_path +
                            "': " + std::strerror(errno));
  }
  const bool wrote =
      std::fwrite(header.data(), 1, header.size(), f) == header.size() &&
      std::fwrite(body.data(), 1, body.size(), f) == body.size() &&
      std::fflush(f) == 0 && fsync(fileno(f)) == 0;
  std::fclose(f);
  if (!wrote) {
    return Status::Internal("cannot write snapshot '" + tmp_path +
                            "': " + std::strerror(errno));
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, path, ec);
  if (ec) {
    return Status::Internal("cannot publish snapshot '" + path +
                            "': " + ec.message());
  }
  // The rename is not durable until the directory entry is: a crash here may
  // resurrect the pre-rename state. The probe lets tests kill the process in
  // exactly this window and prove recovery copes with both outcomes.
  if (injector != nullptr) {
    SETREC_RETURN_IF_ERROR(injector->Probe("snapshot/dirsync"));
  }
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  return FsyncDir(parent.empty() ? std::string(".") : parent.string());
}

Result<SnapshotData> ReadSnapshot(const std::string& path,
                                  const Schema* schema) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (errno == ENOENT) {
      return Status::NotFound("no snapshot at '" + path + "'");
    }
    return Status::Internal("cannot open snapshot '" + path +
                            "': " + std::strerror(errno));
  }
  std::string bytes;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) bytes.append(buf, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::Internal("cannot read snapshot '" + path + "'");
  }

  const std::size_t newline = bytes.find('\n');
  if (newline == std::string::npos) {
    return Status::CorruptedLog("snapshot '" + path + "': missing header");
  }
  std::uint64_t sequence = 0;
  std::size_t len = 0;
  unsigned crc = 0;
  if (std::sscanf(bytes.c_str(),
                  "setrec-snapshot v1 seq=%" SCNu64 " len=%zu crc=%08x",
                  &sequence, &len, &crc) != 3) {
    return Status::CorruptedLog("snapshot '" + path + "': bad header");
  }
  const std::string_view body =
      std::string_view(bytes).substr(newline + 1);
  if (body.size() != len) {
    return Status::CorruptedLog(
        "snapshot '" + path + "': body is " + std::to_string(body.size()) +
        " bytes, header says " + std::to_string(len));
  }
  if (Crc32(body) != crc) {
    return Status::CorruptedLog("snapshot '" + path + "': bad crc");
  }
  Result<Instance> instance = ParseInstance(body, schema);
  if (!instance.ok()) {
    return Status::CorruptedLog("snapshot '" + path + "': body unparsable: " +
                                instance.status().ToString());
  }
  return SnapshotData{std::move(instance).value(), sequence};
}

}  // namespace setrec
