#ifndef SETREC_CORE_PRINTER_H_
#define SETREC_CORE_PRINTER_H_

#include <string>

#include "core/instance.h"
#include "core/receiver.h"
#include "core/schema.h"

namespace setrec {

/// Renders an object as "Drinker_0" using its class name and index, matching
/// the paper's figures (objects of type C are denoted C_1, C_2, ...).
std::string ObjectName(const Schema& schema, ObjectId object);

/// Renders a schema as one "B --e--> C" line per edge plus isolated classes.
std::string SchemaToString(const Schema& schema);

/// Renders an instance: a line per class listing its objects, then a line
/// per edge "Drinker_0 --frequents--> Bar_2". Deterministic order, so the
/// output is directly comparable in tests and golden files.
std::string InstanceToString(const Instance& instance);

/// Renders a receiver as "[Drinker_0, Bar_2]".
std::string ReceiverToString(const Schema& schema, const Receiver& receiver);

}  // namespace setrec

#endif  // SETREC_CORE_PRINTER_H_
