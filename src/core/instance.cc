#include "core/instance.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <iterator>
#include <tuple>

namespace setrec {

namespace {
const std::set<ObjectId> kEmptyObjects;
const std::set<std::pair<ObjectId, ObjectId>> kEmptyEdges;
}  // namespace

Instance::Instance(const Schema* schema) : schema_(schema) {
  assert(schema != nullptr);
}

Status Instance::AddObject(ObjectId object) {
  if (!schema_->HasClass(object.class_id())) {
    return Status::InvalidArgument("object class unknown to schema");
  }
  objects_[object.class_id()].insert(object);
  return Status::OK();
}

Status Instance::AddEdge(ObjectId source, PropertyId property,
                         ObjectId target) {
  if (!schema_->HasProperty(property)) {
    return Status::InvalidArgument("property unknown to schema");
  }
  const Schema::PropertyDef& def = schema_->property(property);
  if (source.class_id() != def.source || target.class_id() != def.target) {
    return Status::InvalidArgument("edge endpoints violate property typing: " +
                                   def.name);
  }
  if (!HasObject(source) || !HasObject(target)) {
    return Status::FailedPrecondition(
        "edge endpoints must be present in the instance");
  }
  edges_[property].emplace(source, target);
  return Status::OK();
}

Status Instance::RemoveEdge(ObjectId source, PropertyId property,
                            ObjectId target) {
  auto it = edges_.find(property);
  if (it != edges_.end()) {
    it->second.erase({source, target});
    if (it->second.empty()) edges_.erase(it);
  }
  return Status::OK();
}

Status Instance::RemoveObject(ObjectId object) {
  auto it = objects_.find(object.class_id());
  if (it == objects_.end() || it->second.erase(object) == 0) {
    return Status::OK();
  }
  if (it->second.empty()) objects_.erase(it);
  // Drop incident edges so the graph stays proper.
  for (auto eit = edges_.begin(); eit != edges_.end();) {
    auto& pairs = eit->second;
    for (auto pit = pairs.begin(); pit != pairs.end();) {
      if (pit->first == object || pit->second == object) {
        pit = pairs.erase(pit);
      } else {
        ++pit;
      }
    }
    eit = pairs.empty() ? edges_.erase(eit) : std::next(eit);
  }
  return Status::OK();
}

Status Instance::ClearEdgesFrom(ObjectId source, PropertyId property) {
  auto it = edges_.find(property);
  if (it == edges_.end()) return Status::OK();
  auto& pairs = it->second;
  auto lo = pairs.lower_bound({source, ObjectId(0, 0)});
  while (lo != pairs.end() && lo->first == source) {
    lo = pairs.erase(lo);
  }
  if (pairs.empty()) edges_.erase(it);
  return Status::OK();
}

bool Instance::HasObject(ObjectId object) const {
  auto it = objects_.find(object.class_id());
  return it != objects_.end() && it->second.contains(object);
}

bool Instance::HasEdge(ObjectId source, PropertyId property,
                       ObjectId target) const {
  auto it = edges_.find(property);
  return it != edges_.end() && it->second.contains({source, target});
}

const std::set<ObjectId>& Instance::objects(ClassId class_id) const {
  auto it = objects_.find(class_id);
  return it == objects_.end() ? kEmptyObjects : it->second;
}

const std::set<std::pair<ObjectId, ObjectId>>& Instance::edges(
    PropertyId property) const {
  auto it = edges_.find(property);
  return it == edges_.end() ? kEmptyEdges : it->second;
}

std::vector<ObjectId> Instance::Targets(ObjectId source,
                                        PropertyId property) const {
  std::vector<ObjectId> out;
  auto it = edges_.find(property);
  if (it == edges_.end()) return out;
  for (auto lo = it->second.lower_bound({source, ObjectId(0, 0)});
       lo != it->second.end() && lo->first == source; ++lo) {
    out.push_back(lo->second);
  }
  return out;
}

std::size_t Instance::num_objects() const {
  std::size_t n = 0;
  for (const auto& [cls, objs] : objects_) n += objs.size();
  return n;
}

std::size_t Instance::num_edges() const {
  std::size_t n = 0;
  for (const auto& [property, pairs] : edges_) n += pairs.size();
  return n;
}

std::vector<ObjectId> Instance::AllObjects() const {
  std::vector<ObjectId> out;
  out.reserve(num_objects());
  for (const auto& [cls, objs] : objects_) {
    out.insert(out.end(), objs.begin(), objs.end());
  }
  return out;
}

std::vector<Edge> Instance::AllEdges() const {
  std::vector<Edge> out;
  out.reserve(num_edges());
  for (const auto& [property, pairs] : edges_) {
    for (const auto& [source, target] : pairs) {
      out.push_back(Edge{source, property, target});
    }
  }
  return out;
}

namespace {

/// AllEdges() emits edges sorted by (property, source, target); Edge's
/// built-in ordering is (source, property, target). set_difference needs the
/// comparator that matches the emitted order.
struct EmittedEdgeOrder {
  bool operator()(const Edge& a, const Edge& b) const {
    return std::tie(a.property, a.source, a.target) <
           std::tie(b.property, b.source, b.target);
  }
};

template <typename T, typename Cmp = std::less<T>>
void SortedDifference(const std::vector<T>& a, const std::vector<T>& b,
                      std::vector<T>& out, Cmp cmp = Cmp{}) {
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out), cmp);
}

}  // namespace

InstanceDelta DiffInstances(const Instance& before, const Instance& after) {
  InstanceDelta delta;
  const std::vector<ObjectId> before_objects = before.AllObjects();
  const std::vector<ObjectId> after_objects = after.AllObjects();
  SortedDifference(before_objects, after_objects, delta.removed_objects);
  SortedDifference(after_objects, before_objects, delta.added_objects);
  const std::vector<Edge> before_edges = before.AllEdges();
  const std::vector<Edge> after_edges = after.AllEdges();
  SortedDifference(before_edges, after_edges, delta.removed_edges,
                   EmittedEdgeOrder{});
  SortedDifference(after_edges, before_edges, delta.added_edges,
                   EmittedEdgeOrder{});
  return delta;
}

Status ApplyDelta(Instance& instance, const InstanceDelta& delta) {
  // Removals first (edges before objects, though RemoveObject would cascade
  // anyway), then additions (objects before the edges that need them).
  for (const Edge& e : delta.removed_edges) {
    SETREC_RETURN_IF_ERROR(instance.RemoveEdge(e.source, e.property, e.target));
  }
  for (ObjectId o : delta.removed_objects) {
    SETREC_RETURN_IF_ERROR(instance.RemoveObject(o));
  }
  for (ObjectId o : delta.added_objects) {
    SETREC_RETURN_IF_ERROR(instance.AddObject(o));
  }
  for (const Edge& e : delta.added_edges) {
    SETREC_RETURN_IF_ERROR(instance.AddEdge(e));
  }
  return Status::OK();
}

bool Instance::IsSubInstanceOf(const Instance& other) const {
  for (const auto& [cls, objs] : objects_) {
    const auto& theirs = other.objects(cls);
    for (ObjectId o : objs) {
      if (!theirs.contains(o)) return false;
    }
  }
  for (const auto& [property, pairs] : edges_) {
    const auto& theirs = other.edges(property);
    for (const auto& pair : pairs) {
      if (!theirs.contains(pair)) return false;
    }
  }
  return true;
}

}  // namespace setrec
