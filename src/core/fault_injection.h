#ifndef SETREC_CORE_FAULT_INJECTION_H_
#define SETREC_CORE_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/status.h"

namespace setrec {

/// What a storage probe asked the WAL writer to do to the bytes it is about
/// to persist. Unlike exec-probe faults (which unwind through Status), a
/// storage fault corrupts the medium itself, and the *reader* must cope.
enum class StorageFaultKind : std::uint8_t {
  kNone = 0,
  /// Persist only the first `byte_offset` bytes of the write, then behave as
  /// a crash: the writer reports an error and refuses further appends.
  kTornWrite,
  /// The fsync fails and the unsynced tail is dropped from the medium
  /// (simulating lost page cache on power failure).
  kPartialFsync,
  /// XOR `bit_mask` into the byte at `byte_offset` of the write and then
  /// persist it *successfully* — silent medium corruption that only the
  /// checksum on the read path can detect.
  kBitFlip,
};

/// A concrete storage-fault instruction returned by StorageProbe.
struct StorageFaultPlan {
  StorageFaultKind kind = StorageFaultKind::kNone;
  std::uint64_t byte_offset = 0;
  std::uint8_t bit_mask = 0;
};

/// What a network probe asked a framed connection to do to the frame it is
/// about to send (or receive). Like storage faults, network faults corrupt
/// the medium — here, the byte stream between two endpoints — and the *peer*
/// must cope through checksums, timeouts, retries and failover.
enum class NetFaultKind : std::uint8_t {
  kNone = 0,
  /// The frame silently vanishes: the sender believes it was sent, the
  /// receiver never sees it. The receiver's read deadline is what surfaces
  /// the loss.
  kDropFrame,
  /// The frame is delivered twice back to back. Receivers must deduplicate
  /// by request id (the server replays its cached response; the client
  /// discards stale response frames).
  kDuplicateFrame,
  /// Only the first `byte_offset` bytes of the frame reach the peer, then
  /// the connection dies — the network analogue of a torn write. The peer
  /// sees a short or checksum-failing frame followed by a closed stream.
  kTruncateFrame,
  /// The frame is delivered intact but `delay_ms` late (tests keep this
  /// small; it exists to exercise deadline propagation, not realism).
  kDelayFrame,
  /// The connection drops before the frame is sent (or, on the receive
  /// side, before the next frame is read). Both endpoints observe a closed
  /// stream.
  kDisconnect,
};

/// A concrete network-fault instruction returned by NetProbe.
struct NetFaultPlan {
  NetFaultKind kind = NetFaultKind::kNone;
  std::uint64_t byte_offset = 0;
  std::uint32_t delay_ms = 0;
};

/// Deterministic fault-injection harness for the resource-governed kernels
/// and the durability layer.
///
/// Every cooperative check inside the library (ExecContext::CheckPoint and
/// the row/memory charge calls) names a *probe point* — a stable string like
/// "chase/fd-pair" or "sql/update/receiver". When an injector is attached to
/// an ExecContext, each check first consults the injector, which can turn
/// the check into a failure. Two deterministic modes:
///
///   * count-triggered — fire exactly at the Nth probe the injector sees
///     (1-based). Tests first run the scenario with an observe-only injector
///     to learn the probe count, then re-run with fire_at = 1..N to prove
///     that a fault at *every* probe point unwinds cleanly (no partial
///     mutation observable).
///   * seeded — fire independently at each probe with a fixed probability,
///     driven by a SplitMix64 stream, so soak tests are reproducible from
///     the seed. Determinism is guaranteed across platforms: the decision is
///     a raw 64-bit integer threshold comparison against SplitMix64 output
///     (no std::rand, no distribution types with unspecified algorithms).
///
/// The durability layer consults a second family of probes: the WAL writer
/// calls StorageProbe() before every physical append/fsync, and the injector
/// may answer with a StorageFaultPlan (torn write at byte N, partial fsync,
/// bit-flip corruption) that the writer applies to the bytes on their way to
/// the medium — see store/wal.h.
///
/// Probe and storage-op counting is atomic, so one injector may be shared
/// between a foreground commit path and a background checkpoint thread.
/// recorded_probes() is mutex-guarded; the firing configuration itself is
/// immutable after construction.
class FaultInjector {
 public:
  /// Observe-only: counts probes (and records them when recording is on) but
  /// never fires.
  FaultInjector() = default;

  /// Counters are atomics, so the injector is movable (for factory returns)
  /// but not copyable.
  FaultInjector(FaultInjector&& other) noexcept { MoveFrom(other); }
  FaultInjector& operator=(FaultInjector&& other) noexcept {
    if (this != &other) MoveFrom(other);
    return *this;
  }
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Fires `code` at exactly the `nth` probe seen (1-based; 0 never fires).
  /// kInternal models an arbitrary internal failure, kDeadlineExceeded /
  /// kResourceExhausted model the governance layer tripping at that point.
  static FaultInjector FireAtNthProbe(std::uint64_t nth,
                                      StatusCode code = StatusCode::kInternal);

  /// Fires `code` independently at each probe with probability `p`, from a
  /// deterministic seeded stream.
  static FaultInjector FireWithProbability(std::uint64_t seed, double p,
                                           StatusCode code =
                                               StatusCode::kInternal);

  // -- Storage-fault factories (consulted by the WAL writer) -----------------

  /// The `nth` storage operation (1-based append/fsync) persists only the
  /// first `byte_offset` bytes of its write and then behaves as a crash.
  static FaultInjector TornWriteAt(std::uint64_t nth,
                                   std::uint64_t byte_offset);

  /// The `nth` storage operation's fsync fails, dropping the unsynced tail
  /// from the medium.
  static FaultInjector PartialFsyncAt(std::uint64_t nth);

  /// The `nth` storage operation silently XORs `bit_mask` into the byte at
  /// `byte_offset` of its write before persisting it.
  static FaultInjector BitFlipAt(std::uint64_t nth, std::uint64_t byte_offset,
                                 std::uint8_t bit_mask = 0x01);

  // -- Network-fault factories (consulted by framed connections) --------------

  /// The `nth` network operation's frame is silently dropped.
  static FaultInjector DropFrameAt(std::uint64_t nth);

  /// The `nth` network operation's frame is delivered twice.
  static FaultInjector DuplicateFrameAt(std::uint64_t nth);

  /// The `nth` network operation delivers only the first `byte_offset` bytes
  /// of its frame, then the connection dies.
  static FaultInjector TruncateFrameAt(std::uint64_t nth,
                                       std::uint64_t byte_offset);

  /// The `nth` network operation's frame is delayed by `delay_ms`.
  static FaultInjector DelayFrameAt(std::uint64_t nth, std::uint32_t delay_ms);

  /// The connection disconnects at the `nth` network operation, before its
  /// frame moves.
  static FaultInjector DisconnectAt(std::uint64_t nth);

  /// Consults the injector at a probe point. Returns OK (and counts the
  /// probe) or the injected fault, whose message carries the probe name and
  /// ordinal so test failures pinpoint the firing site.
  Status Probe(std::string_view probe_point);

  /// Consults the injector before a physical storage operation (a WAL append
  /// or fsync). Returns the fault to apply to the bytes, or kNone. Counted
  /// separately from exec probes.
  StorageFaultPlan StorageProbe(std::string_view probe_point);

  /// Consults the injector before a framed network send/receive. Returns the
  /// fault to apply to the frame, or kNone. Counted separately from exec and
  /// storage probes, so a frame-sweep test enumerates network operations
  /// without disturbing the exec-probe crash matrix.
  NetFaultPlan NetProbe(std::string_view probe_point);

  /// Total probes seen so far (fired or not).
  std::uint64_t probes_seen() const {
    return probes_.load(std::memory_order_relaxed);
  }
  /// How many probes fired a fault.
  std::uint64_t faults_fired() const {
    return fired_.load(std::memory_order_relaxed);
  }
  /// Total storage operations consulted so far.
  std::uint64_t storage_ops_seen() const {
    return storage_ops_.load(std::memory_order_relaxed);
  }
  /// How many storage operations received a non-kNone plan.
  std::uint64_t storage_faults_fired() const {
    return storage_fired_.load(std::memory_order_relaxed);
  }
  /// Total network operations consulted so far.
  std::uint64_t net_ops_seen() const {
    return net_ops_.load(std::memory_order_relaxed);
  }
  /// How many network operations received a non-kNone plan.
  std::uint64_t net_faults_fired() const {
    return net_fired_.load(std::memory_order_relaxed);
  }

  /// When on, every probe name is appended to recorded_probes() in order —
  /// lets tests enumerate the probe points a scenario traverses.
  void set_recording(bool on) { recording_ = on; }
  std::vector<std::string> recorded_probes() const {
    std::lock_guard<std::mutex> lock(log_mu_);
    return log_;
  }

  /// Resets counters and the recording (keeps the firing configuration), so
  /// one injector can govern several sequential runs.
  void Reset();

 private:
  void MoveFrom(FaultInjector& other);

  std::atomic<std::uint64_t> probes_{0};
  std::atomic<std::uint64_t> fired_{0};
  std::atomic<std::uint64_t> storage_ops_{0};
  std::atomic<std::uint64_t> storage_fired_{0};
  // Count-triggered mode.
  std::uint64_t fire_at_ = 0;
  // Seeded mode: fire iff SplitMix64 output < threshold (0 = never; the
  // all-ones threshold means always).
  std::atomic<std::uint64_t> rng_state_{0};
  std::uint64_t threshold_ = 0;
  bool seeded_ = false;
  StatusCode code_ = StatusCode::kInternal;
  // Storage-fault mode.
  StorageFaultPlan storage_plan_;
  std::uint64_t storage_fire_at_ = 0;
  // Network-fault mode.
  std::atomic<std::uint64_t> net_ops_{0};
  std::atomic<std::uint64_t> net_fired_{0};
  NetFaultPlan net_plan_;
  std::uint64_t net_fire_at_ = 0;
  bool recording_ = false;
  mutable std::mutex log_mu_;
  std::vector<std::string> log_;
};

}  // namespace setrec

#endif  // SETREC_CORE_FAULT_INJECTION_H_
