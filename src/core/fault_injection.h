#ifndef SETREC_CORE_FAULT_INJECTION_H_
#define SETREC_CORE_FAULT_INJECTION_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/status.h"

namespace setrec {

/// Deterministic fault-injection harness for the resource-governed kernels.
///
/// Every cooperative check inside the library (ExecContext::CheckPoint and
/// the row/memory charge calls) names a *probe point* — a stable string like
/// "chase/fd-pair" or "sql/update/receiver". When an injector is attached to
/// an ExecContext, each check first consults the injector, which can turn
/// the check into a failure. Two deterministic modes:
///
///   * count-triggered — fire exactly at the Nth probe the injector sees
///     (1-based). Tests first run the scenario with an observe-only injector
///     to learn the probe count, then re-run with fire_at = 1..N to prove
///     that a fault at *every* probe point unwinds cleanly (no partial
///     mutation observable).
///   * seeded — fire independently at each probe with a fixed probability,
///     driven by a SplitMix64 stream, so soak tests are reproducible from
///     the seed.
///
/// Injectors are observation tools, not thread-safe shared state: attach one
/// injector to one context on one thread.
class FaultInjector {
 public:
  /// Observe-only: counts probes (and records them when recording is on) but
  /// never fires.
  FaultInjector() = default;

  /// Fires `code` at exactly the `nth` probe seen (1-based; 0 never fires).
  /// kInternal models an arbitrary internal failure, kDeadlineExceeded /
  /// kResourceExhausted model the governance layer tripping at that point.
  static FaultInjector FireAtNthProbe(std::uint64_t nth,
                                      StatusCode code = StatusCode::kInternal);

  /// Fires `code` independently at each probe with probability `p`, from a
  /// deterministic seeded stream.
  static FaultInjector FireWithProbability(std::uint64_t seed, double p,
                                           StatusCode code =
                                               StatusCode::kInternal);

  /// Consults the injector at a probe point. Returns OK (and counts the
  /// probe) or the injected fault, whose message carries the probe name and
  /// ordinal so test failures pinpoint the firing site.
  Status Probe(std::string_view probe_point);

  /// Total probes seen so far (fired or not).
  std::uint64_t probes_seen() const { return probes_; }
  /// How many probes fired a fault.
  std::uint64_t faults_fired() const { return fired_; }

  /// When on, every probe name is appended to recorded_probes() in order —
  /// lets tests enumerate the probe points a scenario traverses.
  void set_recording(bool on) { recording_ = on; }
  const std::vector<std::string>& recorded_probes() const { return log_; }

  /// Resets counters and the recording (keeps the firing configuration), so
  /// one injector can govern several sequential runs.
  void Reset();

 private:
  std::uint64_t probes_ = 0;
  std::uint64_t fired_ = 0;
  // Count-triggered mode.
  std::uint64_t fire_at_ = 0;
  // Seeded mode.
  double probability_ = 0.0;
  std::uint64_t rng_state_ = 0;
  bool seeded_ = false;
  StatusCode code_ = StatusCode::kInternal;
  bool recording_ = false;
  std::vector<std::string> log_;
};

}  // namespace setrec

#endif  // SETREC_CORE_FAULT_INJECTION_H_
