#ifndef SETREC_CORE_INSTANCE_GENERATOR_H_
#define SETREC_CORE_INSTANCE_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "core/instance.h"
#include "core/receiver.h"
#include "core/schema.h"

namespace setrec {

/// SplitMix64: a tiny, high-quality, fully deterministic PRNG. Used instead
/// of <random> engines so that generated workloads are bit-identical across
/// standard libraries — every property test and bench is reproducible from
/// its seed.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n); n must be positive.
  std::size_t UniformInt(std::size_t n) { return Next() % n; }

  /// Uniform in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  std::uint64_t state_;
};

/// Seeded generator of random instances and receiver sets over a schema,
/// used by property-based tests and by the randomized order-dependence
/// refuter (the best one can do for the undecidable general case, Cor 5.7).
class InstanceGenerator {
 public:
  struct Options {
    /// Objects drawn per class: uniform in [min_objects, max_objects].
    std::uint32_t min_objects_per_class = 1;
    std::uint32_t max_objects_per_class = 4;
    /// Each schema-permitted edge is present independently with this
    /// probability.
    double edge_probability = 0.4;
  };

  InstanceGenerator(const Schema* schema, std::uint64_t seed)
      : schema_(schema), rng_(seed) {}

  /// A random instance of the schema.
  Instance RandomInstance(const Options& options);

  /// Every receiver of type `signature` over `instance` (the Cartesian
  /// product of the signature's classes). Deterministic order.
  static std::vector<Receiver> AllReceivers(const Instance& instance,
                                            const MethodSignature& signature);

  /// A random subset of AllReceivers of size ≤ count (distinct receivers).
  std::vector<Receiver> RandomReceiverSet(const Instance& instance,
                                          const MethodSignature& signature,
                                          std::size_t count);

  /// A random *key set* (Section 3): distinct receiving objects. Size is
  /// bounded by both `count` and the receiving class's population.
  std::vector<Receiver> RandomKeySet(const Instance& instance,
                                     const MethodSignature& signature,
                                     std::size_t count);

  SplitMix64& rng() { return rng_; }

 private:
  const Schema* schema_;
  SplitMix64 rng_;
};

}  // namespace setrec

#endif  // SETREC_CORE_INSTANCE_GENERATOR_H_
