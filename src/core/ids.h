#ifndef SETREC_CORE_IDS_H_
#define SETREC_CORE_IDS_H_

#include <compare>
#include <cstdint>
#include <functional>

namespace setrec {

/// Index of a class name in a Schema.
using ClassId = std::uint32_t;
/// Index of a property name (edge label) in a Schema.
using PropertyId = std::uint32_t;

/// Identity of an object. The paper (Section 2) requires each class name to
/// have its own universe of objects, with universes of different classes
/// disjoint; tagging every object with its class realizes this structurally:
/// two ObjectIds with different classes are never equal.
class ObjectId {
 public:
  constexpr ObjectId(ClassId class_id, std::uint32_t index)
      : class_id_(class_id), index_(index) {}

  constexpr ClassId class_id() const { return class_id_; }
  constexpr std::uint32_t index() const { return index_; }

  friend constexpr auto operator<=>(const ObjectId&, const ObjectId&) = default;

 private:
  ClassId class_id_;
  std::uint32_t index_;
};

/// A schema item (Definition 4.1 lifted to schemas): either a class name or
/// a property name. Colorings assign color sets to schema items.
class SchemaItem {
 public:
  enum class Kind : std::uint8_t { kClass, kProperty };

  static constexpr SchemaItem Class(ClassId id) {
    return SchemaItem(Kind::kClass, id);
  }
  static constexpr SchemaItem Property(PropertyId id) {
    return SchemaItem(Kind::kProperty, id);
  }

  constexpr Kind kind() const { return kind_; }
  constexpr bool is_class() const { return kind_ == Kind::kClass; }
  constexpr bool is_property() const { return kind_ == Kind::kProperty; }
  constexpr std::uint32_t id() const { return id_; }

  friend constexpr auto operator<=>(const SchemaItem&, const SchemaItem&) =
      default;

 private:
  constexpr SchemaItem(Kind kind, std::uint32_t id) : kind_(kind), id_(id) {}

  Kind kind_;
  std::uint32_t id_;
};

}  // namespace setrec

template <>
struct std::hash<setrec::ObjectId> {
  std::size_t operator()(const setrec::ObjectId& o) const noexcept {
    return (static_cast<std::size_t>(o.class_id()) << 32) | o.index();
  }
};

#endif  // SETREC_CORE_IDS_H_
