#ifndef SETREC_CORE_SEQUENTIAL_H_
#define SETREC_CORE_SEQUENTIAL_H_

#include <optional>
#include <span>
#include <vector>

#include "core/exec_context.h"
#include "core/exec_options.h"
#include "core/instance.h"
#include "core/receiver.h"
#include "core/status.h"
#include "core/update_method.h"

namespace setrec {

/// Applies M to a *sequence* of distinct receivers: M(I, t1 ... tn) =
/// M(M(I, t1), t2, ..., tn) (Section 3). The value is undefined (an error
/// status is returned) as soon as some ti is not a receiver over the evolving
/// instance or M itself fails. `ctx` governs the per-receiver loop.
Result<Instance> ApplySequence(const UpdateMethod& method,
                               const Instance& instance,
                               std::span<const Receiver> sequence,
                               ExecContext& ctx = ExecContext::Default());

/// Outcome of testing Definition 3.1 on a concrete pair (I, T).
struct OrderIndependenceOutcome {
  /// True when every enumeration of T yields the same result — where, per
  /// footnote 2 of the paper, "same" includes the case that all enumerations
  /// are undefined.
  bool order_independent = false;
  /// Set iff order_independent and the common value is defined: this is the
  /// sequential application M_seq(I, T).
  std::optional<Instance> result;

  /// When !order_independent: two enumerations witnessing the disagreement,
  /// with their outcomes (std::nullopt encodes "undefined").
  std::vector<Receiver> witness_a;
  std::vector<Receiver> witness_b;
  std::optional<Instance> result_a;
  std::optional<Instance> result_b;
};

/// Tests whether `method` is order independent on (instance, receivers) by
/// exhaustively enumerating all |T|! orders (Definition 3.1). Receivers are
/// de-duplicated first (T is a set).
///
/// The |T|! enumeration is governed by `ctx`: every enumerated order is a
/// checkpoint, so a step budget or deadline turns a runaway test into a
/// clean kResourceExhausted / kDeadlineExceeded. `max_set_size` is the
/// fallback guard for permissive contexts — when |T| exceeds it and `ctx`
/// carries neither a step budget nor a deadline, the test refuses up front
/// with kResourceExhausted (the uniform "needs a bigger budget" signal)
/// instead of hanging; with a limited context, sets of any size are
/// attempted and the context decides how far they get.
Result<OrderIndependenceOutcome> OrderIndependentOn(
    const UpdateMethod& method, const Instance& instance,
    std::span<const Receiver> receivers,
    ExecContext& ctx = ExecContext::Default(), std::size_t max_set_size = 7);

/// The Lemma 3.3 test: checks M(M(I,t),t') = M(M(I,t'),t) for every
/// unordered pair {t, t'} from `receivers`. For testing *global* order
/// independence this is equivalent to the full-permutation test (the lemma),
/// but on a *fixed* (I, T) it is only necessary, not sufficient, so the
/// full test above remains the ground truth for a single pair (I, T).
Result<OrderIndependenceOutcome> PairwiseOrderIndependentOn(
    const UpdateMethod& method, const Instance& instance,
    std::span<const Receiver> receivers,
    ExecContext& ctx = ExecContext::Default());

/// Sequential application M_seq(I, T) (Definition 3.1): picks an arbitrary
/// (here: sorted) enumeration of T. When `verify_order_independence` is set,
/// first runs the exhaustive test and fails with FailedPrecondition if M is
/// not order independent on (I, T).
Result<Instance> SequentialApply(const UpdateMethod& method,
                                 const Instance& instance,
                                 std::span<const Receiver> receivers,
                                 const ExecOptions& options,
                                 bool verify_order_independence = false);

/// Compat shim predating ExecOptions; prefer the overload above.
Result<Instance> SequentialApply(const UpdateMethod& method,
                                 const Instance& instance,
                                 std::span<const Receiver> receivers,
                                 bool verify_order_independence = false,
                                 ExecContext& ctx = ExecContext::Default());

/// Deduplicates and sorts a receiver list into a canonical set enumeration.
std::vector<Receiver> CanonicalReceiverSet(std::span<const Receiver> receivers);

}  // namespace setrec

#endif  // SETREC_CORE_SEQUENTIAL_H_
