#ifndef SETREC_CORE_COMBINATION_H_
#define SETREC_CORE_COMBINATION_H_

#include <span>

#include "core/instance.h"
#include "core/receiver.h"
#include "core/status.h"
#include "core/update_method.h"

namespace setrec {

/// The "coarser grained" parallel interpretations discussed at the end of
/// Section 1: apply M to each receiver *separately* on the original input
/// instance, producing D1, ..., Dn, then combine the outputs.

/// Abiteboul–Vianu combination: the plain union ∪i Di of the per-receiver
/// results (union of proper instances is proper). Returns I itself when the
/// receiver set is empty.
Result<Instance> ApplyCombinationUnion(const UpdateMethod& method,
                                       const Instance& instance,
                                       std::span<const Receiver> receivers);

/// The refined combination operator the paper singles out as well-behaved:
///     ∩i Di  ∪  ∪i (Di − D)
/// where D is the input instance; the result is cleaned up with G since
/// removing items can orphan edges contributed by other receivers.
Result<Instance> ApplyCombinationRefined(const UpdateMethod& method,
                                         const Instance& instance,
                                         std::span<const Receiver> receivers);

}  // namespace setrec

#endif  // SETREC_CORE_COMBINATION_H_
