#ifndef SETREC_CORE_EXEC_OPTIONS_H_
#define SETREC_CORE_EXEC_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>

#include "core/exec_backend.h"
#include "core/exec_context.h"
#include "core/status.h"

namespace setrec {

class Instance;
class ThreadPool;
class ViewCache;
struct InstanceDelta;

/// Receiver of committed instance deltas. This is the layering seam between
/// the governed entry points (which live in the core and cannot link the
/// incremental library) and `ViewCache` (incremental/view_cache.h), which
/// implements it: call sites publish through the abstract interface, while
/// layers that need the concrete cache (the SQL engine's receiver-view
/// path) recover it via AsViewCache() without RTTI.
class DeltaSink {
 public:
  virtual ~DeltaSink() = default;

  /// Absorbs one committed delta. Publication happens *after* the mutation
  /// it describes durably succeeded; a sink that cannot absorb it must fail
  /// closed (stop serving reads) rather than serve stale state as fresh.
  virtual Status ApplyDelta(const InstanceDelta& delta) = 0;

  /// The concrete incremental view cache, when this sink is one.
  virtual ViewCache* AsViewCache() { return nullptr; }
};

/// A commit hook for mutating statements: invoked exactly once, after the
/// statement's in-memory application succeeded, with the pre- and
/// post-statement states. Returning non-OK *vetoes* the commit — the
/// statement restores the pre-state snapshot and propagates the hook's
/// error. This is the durability layer's interposition point (see
/// store/durable_store.h). An empty hook commits unconditionally.
using CommitHook =
    std::function<Status(const Instance& before, const Instance& after)>;

/// The one options struct every governed entry point accepts. It bundles
/// the parameters that used to accrete one by one on each signature
/// (ExecContext*, CommitHook, ParallelOptions, and now Tracer* /
/// MetricsRegistry*), so adding an execution concern never changes an API
/// again. All fields are optional; a default-constructed ExecOptions means
/// "permissive, unobserved, single-threaded, commit unconditionally" —
/// exactly the old default-argument behavior.
///
/// Everything here is borrowed, not owned; the referents must outlive the
/// call.
struct ExecOptions {
  /// Governing context. Null = a fresh permissive context per call.
  ExecContext* ctx = nullptr;

  /// Observability sinks, attached to the governing context for the call's
  /// duration (Fork() carries them into fan-outs). If `ctx` already has a
  /// tracer/metrics attached, the context's attachment wins.
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;

  /// Flight recorder for the call's duration. Contexts are born recording
  /// into FlightRecorder::Global() (the recorder is always on), so unlike
  /// tracer/metrics this field *overrides* the context's recorder when set —
  /// point it at a private recorder to isolate a run's breadcrumbs, and the
  /// scope restores the previous recorder on exit. Null = keep the
  /// context's current recorder.
  FlightRecorder* recorder = nullptr;

  /// Multi-core runtime (honored by the entry points that shard:
  /// ParallelApply and the evaluator's partitioned join probe). `pool` is
  /// borrowed; when null and num_workers > 1, a transient pool is spawned.
  std::size_t num_workers = 1;
  ThreadPool* pool = nullptr;

  /// Request-family trace id (obs/trace.h TraceContext) stamped on the
  /// governing context for the call's duration, so spans opened on pool
  /// threads — where no ScopedTraceContext is installed — still join the
  /// request's family via ExecContext::trace_id(). 0 = untraced; a context
  /// that already carries a trace id wins.
  std::uint64_t trace_id = 0;

  /// Execution backend for relational evaluation (core/exec_backend.h).
  /// kAuto (the default) keeps the interpreter unless the compiled
  /// vectorized backend covers the expression and the inputs are large
  /// enough to pay for batching; kInterpreter and kVectorized force a
  /// backend. Results, error statuses and logical counters are
  /// backend-invariant, so this is a pure performance knob.
  ExecBackend backend = ExecBackend::kAuto;

  /// Commit interposition for the in-place SQL statements; ignored by
  /// read-only entry points.
  CommitHook commit_hook;

  /// Incremental view cache (or any delta sink) to keep in sync with the
  /// call's effects. Mutating entry points publish the committed delta to
  /// it after they succeed; the SQL engine's set-oriented update also
  /// derives its receiver set through the cache (falling back to
  /// from-scratch evaluation on any cache miss or error). Null = no
  /// incremental maintenance — the old behavior.
  DeltaSink* view_cache = nullptr;
};

/// Resolves ExecOptions to a concrete ExecContext for the duration of one
/// entry-point call: materializes a fresh permissive context when none was
/// given, and attaches the options' tracer/metrics to it, detaching on
/// destruction anything it attached to a *borrowed* context (so a caller's
/// context is returned exactly as it came).
class ExecScope {
 public:
  explicit ExecScope(const ExecOptions& options) {
    if (options.ctx != nullptr) {
      ctx_ = options.ctx;
    } else {
      ctx_ = &local_.emplace();
    }
    if (options.tracer != nullptr && ctx_->tracer() == nullptr) {
      ctx_->set_tracer(options.tracer);
      attached_tracer_ = true;
    }
    if (options.metrics != nullptr && ctx_->metrics() == nullptr) {
      ctx_->set_metrics(options.metrics);
      attached_metrics_ = true;
    }
    if (options.recorder != nullptr) {
      previous_recorder_ = ctx_->recorder();
      ctx_->set_recorder(options.recorder);
      swapped_recorder_ = true;
    }
    if (options.trace_id != 0 && ctx_->trace_id() == 0) {
      ctx_->set_trace_id(options.trace_id);
      attached_trace_id_ = true;
    }
  }
  ~ExecScope() {
    if (attached_tracer_) ctx_->set_tracer(nullptr);
    if (attached_metrics_) ctx_->set_metrics(nullptr);
    if (swapped_recorder_) ctx_->set_recorder(previous_recorder_);
    if (attached_trace_id_) ctx_->set_trace_id(0);
  }
  ExecScope(const ExecScope&) = delete;
  ExecScope& operator=(const ExecScope&) = delete;

  ExecContext& ctx() { return *ctx_; }

 private:
  std::optional<ExecContext> local_;
  ExecContext* ctx_ = nullptr;
  FlightRecorder* previous_recorder_ = nullptr;
  bool attached_tracer_ = false;
  bool attached_metrics_ = false;
  bool swapped_recorder_ = false;
  bool attached_trace_id_ = false;
};

}  // namespace setrec

#endif  // SETREC_CORE_EXEC_OPTIONS_H_
