#include "core/fault_injection.h"

namespace setrec {

namespace {

/// SplitMix64 step (same generator as core/instance_generator.h, duplicated
/// here to keep the core fault layer free of the generator header).
std::uint64_t NextRandom(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Status MakeFault(StatusCode code, std::string_view probe,
                 std::uint64_t ordinal) {
  std::string msg = "injected fault at probe '" + std::string(probe) +
                    "' (#" + std::to_string(ordinal) + ")";
  switch (code) {
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(std::move(msg));
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(std::move(msg));
    case StatusCode::kCancelled:
      return Status::Cancelled(std::move(msg));
    default:
      return Status::Internal(std::move(msg));
  }
}

}  // namespace

FaultInjector FaultInjector::FireAtNthProbe(std::uint64_t nth,
                                            StatusCode code) {
  FaultInjector out;
  out.fire_at_ = nth;
  out.code_ = code;
  return out;
}

FaultInjector FaultInjector::FireWithProbability(std::uint64_t seed, double p,
                                                 StatusCode code) {
  FaultInjector out;
  out.seeded_ = true;
  out.rng_state_ = seed;
  out.probability_ = p;
  out.code_ = code;
  return out;
}

Status FaultInjector::Probe(std::string_view probe_point) {
  ++probes_;
  if (recording_) log_.emplace_back(probe_point);
  bool fire = false;
  if (fire_at_ != 0 && probes_ == fire_at_) fire = true;
  if (seeded_) {
    const double draw =
        static_cast<double>(NextRandom(rng_state_) >> 11) * 0x1.0p-53;
    if (draw < probability_) fire = true;
  }
  if (!fire) return Status::OK();
  ++fired_;
  return MakeFault(code_, probe_point, probes_);
}

void FaultInjector::Reset() {
  probes_ = 0;
  fired_ = 0;
  log_.clear();
}

}  // namespace setrec
