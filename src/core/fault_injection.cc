#include "core/fault_injection.h"

#include <cmath>

namespace setrec {

namespace {

/// SplitMix64 increment (golden-ratio gamma) and output mix. The same
/// generator as core/instance_generator.h, duplicated here to keep the core
/// fault layer free of the generator header. The state advance is a single
/// fetch_add, so concurrent probes draw distinct, deterministic stream
/// elements (the set of draws for N probes is seed-determined; the
/// per-thread interleaving is not, which is the best any shared stream can
/// offer).
constexpr std::uint64_t kGamma = 0x9e3779b97f4a7c15ULL;

std::uint64_t Mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Status MakeFault(StatusCode code, std::string_view probe,
                 std::uint64_t ordinal) {
  std::string msg = "injected fault at probe '" + std::string(probe) +
                    "' (#" + std::to_string(ordinal) + ")";
  switch (code) {
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(std::move(msg));
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(std::move(msg));
    case StatusCode::kCancelled:
      return Status::Cancelled(std::move(msg));
    case StatusCode::kCorruptedLog:
      return Status::CorruptedLog(std::move(msg));
    default:
      return Status::Internal(std::move(msg));
  }
}

/// Maps a probability to a 64-bit comparison threshold: fire iff a SplitMix64
/// draw is < threshold. Pure integer compare — bit-identical on every
/// platform for a fixed seed.
std::uint64_t ProbabilityThreshold(double p) {
  if (!(p > 0.0)) return 0;  // also maps NaN to "never"
  if (p >= 1.0) return ~0ULL;
  const double scaled = std::ldexp(p, 64);  // p * 2^64, exact scaling
  if (scaled >= 18446744073709551616.0) return ~0ULL;  // 2^64
  return static_cast<std::uint64_t>(scaled);
}

}  // namespace

void FaultInjector::MoveFrom(FaultInjector& other) {
  probes_.store(other.probes_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  fired_.store(other.fired_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
  storage_ops_.store(other.storage_ops_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  storage_fired_.store(other.storage_fired_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  net_ops_.store(other.net_ops_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  net_fired_.store(other.net_fired_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  fire_at_ = other.fire_at_;
  rng_state_.store(other.rng_state_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  threshold_ = other.threshold_;
  seeded_ = other.seeded_;
  code_ = other.code_;
  storage_plan_ = other.storage_plan_;
  storage_fire_at_ = other.storage_fire_at_;
  net_plan_ = other.net_plan_;
  net_fire_at_ = other.net_fire_at_;
  recording_ = other.recording_;
  std::lock_guard<std::mutex> lock(other.log_mu_);
  log_ = std::move(other.log_);
}

FaultInjector FaultInjector::FireAtNthProbe(std::uint64_t nth,
                                            StatusCode code) {
  FaultInjector out;
  out.fire_at_ = nth;
  out.code_ = code;
  return out;
}

FaultInjector FaultInjector::FireWithProbability(std::uint64_t seed, double p,
                                                 StatusCode code) {
  FaultInjector out;
  out.seeded_ = true;
  out.rng_state_.store(seed, std::memory_order_relaxed);
  out.threshold_ = ProbabilityThreshold(p);
  out.code_ = code;
  return out;
}

FaultInjector FaultInjector::TornWriteAt(std::uint64_t nth,
                                         std::uint64_t byte_offset) {
  FaultInjector out;
  out.storage_fire_at_ = nth;
  out.storage_plan_ = {StorageFaultKind::kTornWrite, byte_offset, 0};
  return out;
}

FaultInjector FaultInjector::PartialFsyncAt(std::uint64_t nth) {
  FaultInjector out;
  out.storage_fire_at_ = nth;
  out.storage_plan_ = {StorageFaultKind::kPartialFsync, 0, 0};
  return out;
}

FaultInjector FaultInjector::BitFlipAt(std::uint64_t nth,
                                       std::uint64_t byte_offset,
                                       std::uint8_t bit_mask) {
  FaultInjector out;
  out.storage_fire_at_ = nth;
  out.storage_plan_ = {StorageFaultKind::kBitFlip, byte_offset,
                       bit_mask == 0 ? std::uint8_t{0x01} : bit_mask};
  return out;
}

FaultInjector FaultInjector::DropFrameAt(std::uint64_t nth) {
  FaultInjector out;
  out.net_fire_at_ = nth;
  out.net_plan_ = {NetFaultKind::kDropFrame, 0, 0};
  return out;
}

FaultInjector FaultInjector::DuplicateFrameAt(std::uint64_t nth) {
  FaultInjector out;
  out.net_fire_at_ = nth;
  out.net_plan_ = {NetFaultKind::kDuplicateFrame, 0, 0};
  return out;
}

FaultInjector FaultInjector::TruncateFrameAt(std::uint64_t nth,
                                             std::uint64_t byte_offset) {
  FaultInjector out;
  out.net_fire_at_ = nth;
  out.net_plan_ = {NetFaultKind::kTruncateFrame, byte_offset, 0};
  return out;
}

FaultInjector FaultInjector::DelayFrameAt(std::uint64_t nth,
                                          std::uint32_t delay_ms) {
  FaultInjector out;
  out.net_fire_at_ = nth;
  out.net_plan_ = {NetFaultKind::kDelayFrame, 0, delay_ms};
  return out;
}

FaultInjector FaultInjector::DisconnectAt(std::uint64_t nth) {
  FaultInjector out;
  out.net_fire_at_ = nth;
  out.net_plan_ = {NetFaultKind::kDisconnect, 0, 0};
  return out;
}

Status FaultInjector::Probe(std::string_view probe_point) {
  const std::uint64_t ordinal =
      probes_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (recording_) {
    std::lock_guard<std::mutex> lock(log_mu_);
    log_.emplace_back(probe_point);
  }
  bool fire = false;
  if (fire_at_ != 0 && ordinal == fire_at_) fire = true;
  if (seeded_ && threshold_ != 0) {
    const std::uint64_t state =
        rng_state_.fetch_add(kGamma, std::memory_order_relaxed) + kGamma;
    const std::uint64_t draw = Mix(state);
    if (threshold_ == ~0ULL || draw < threshold_) fire = true;
  }
  if (!fire) return Status::OK();
  fired_.fetch_add(1, std::memory_order_relaxed);
  return MakeFault(code_, probe_point, ordinal);
}

StorageFaultPlan FaultInjector::StorageProbe(std::string_view probe_point) {
  const std::uint64_t ordinal =
      storage_ops_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (recording_) {
    std::lock_guard<std::mutex> lock(log_mu_);
    log_.emplace_back(std::string(probe_point));
  }
  if (storage_fire_at_ == 0 || ordinal != storage_fire_at_ ||
      storage_plan_.kind == StorageFaultKind::kNone) {
    return StorageFaultPlan{};
  }
  storage_fired_.fetch_add(1, std::memory_order_relaxed);
  return storage_plan_;
}

NetFaultPlan FaultInjector::NetProbe(std::string_view probe_point) {
  const std::uint64_t ordinal =
      net_ops_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (recording_) {
    std::lock_guard<std::mutex> lock(log_mu_);
    log_.emplace_back(std::string(probe_point));
  }
  if (net_fire_at_ == 0 || ordinal != net_fire_at_ ||
      net_plan_.kind == NetFaultKind::kNone) {
    return NetFaultPlan{};
  }
  net_fired_.fetch_add(1, std::memory_order_relaxed);
  return net_plan_;
}

void FaultInjector::Reset() {
  probes_.store(0, std::memory_order_relaxed);
  fired_.store(0, std::memory_order_relaxed);
  storage_ops_.store(0, std::memory_order_relaxed);
  storage_fired_.store(0, std::memory_order_relaxed);
  net_ops_.store(0, std::memory_order_relaxed);
  net_fired_.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(log_mu_);
  log_.clear();
}

}  // namespace setrec
