#include "core/partial_instance.h"

#include <cassert>

namespace setrec {

namespace {

template <typename K, typename V>
std::map<K, std::set<V>> MapUnion(const std::map<K, std::set<V>>& a,
                                  const std::map<K, std::set<V>>& b) {
  std::map<K, std::set<V>> out = a;
  for (const auto& [key, values] : b) {
    out[key].insert(values.begin(), values.end());
  }
  return out;
}

template <typename K, typename V>
std::map<K, std::set<V>> MapDifference(const std::map<K, std::set<V>>& a,
                                       const std::map<K, std::set<V>>& b) {
  std::map<K, std::set<V>> out;
  for (const auto& [key, values] : a) {
    std::set<V> kept;
    auto bit = b.find(key);
    if (bit == b.end()) {
      kept = values;
    } else {
      for (const V& v : values) {
        if (!bit->second.contains(v)) kept.insert(v);
      }
    }
    if (!kept.empty()) out.emplace(key, std::move(kept));
  }
  return out;
}

template <typename K, typename V>
std::map<K, std::set<V>> MapIntersection(const std::map<K, std::set<V>>& a,
                                         const std::map<K, std::set<V>>& b) {
  std::map<K, std::set<V>> out;
  for (const auto& [key, values] : a) {
    auto bit = b.find(key);
    if (bit == b.end()) continue;
    std::set<V> kept;
    for (const V& v : values) {
      if (bit->second.contains(v)) kept.insert(v);
    }
    if (!kept.empty()) out.emplace(key, std::move(kept));
  }
  return out;
}

}  // namespace

PartialInstance::PartialInstance(const Schema* schema) : schema_(schema) {
  assert(schema != nullptr);
}

PartialInstance PartialInstance::FromInstance(const Instance& instance) {
  PartialInstance out(&instance.schema());
  out.objects_ = instance.objects_;
  out.edges_ = instance.edges_;
  return out;
}

Status PartialInstance::AddObject(ObjectId object) {
  if (!schema_->HasClass(object.class_id())) {
    return Status::InvalidArgument("object class unknown to schema");
  }
  objects_[object.class_id()].insert(object);
  return Status::OK();
}

Status PartialInstance::AddEdge(ObjectId source, PropertyId property,
                                ObjectId target) {
  if (!schema_->HasProperty(property)) {
    return Status::InvalidArgument("property unknown to schema");
  }
  const Schema::PropertyDef& def = schema_->property(property);
  if (source.class_id() != def.source || target.class_id() != def.target) {
    return Status::InvalidArgument("edge endpoints violate property typing: " +
                                   def.name);
  }
  edges_[property].emplace(source, target);
  return Status::OK();
}

bool PartialInstance::HasObject(ObjectId object) const {
  auto it = objects_.find(object.class_id());
  return it != objects_.end() && it->second.contains(object);
}

bool PartialInstance::HasEdge(ObjectId source, PropertyId property,
                              ObjectId target) const {
  auto it = edges_.find(property);
  return it != edges_.end() && it->second.contains({source, target});
}

std::size_t PartialInstance::num_items() const {
  std::size_t n = 0;
  for (const auto& [cls, objs] : objects_) n += objs.size();
  for (const auto& [property, pairs] : edges_) n += pairs.size();
  return n;
}

PartialInstance PartialInstance::Union(const PartialInstance& other) const {
  PartialInstance out(schema_);
  out.objects_ = MapUnion(objects_, other.objects_);
  out.edges_ = MapUnion(edges_, other.edges_);
  return out;
}

PartialInstance PartialInstance::Difference(
    const PartialInstance& other) const {
  PartialInstance out(schema_);
  out.objects_ = MapDifference(objects_, other.objects_);
  out.edges_ = MapDifference(edges_, other.edges_);
  return out;
}

PartialInstance PartialInstance::Intersection(
    const PartialInstance& other) const {
  PartialInstance out(schema_);
  out.objects_ = MapIntersection(objects_, other.objects_);
  out.edges_ = MapIntersection(edges_, other.edges_);
  return out;
}

Instance PartialInstance::G() const {
  Instance out(schema_);
  for (const auto& [cls, objs] : objects_) {
    for (ObjectId o : objs) {
      Status s = out.AddObject(o);
      assert(s.ok());
      (void)s;
    }
  }
  for (const auto& [property, pairs] : edges_) {
    for (const auto& [source, target] : pairs) {
      if (HasObject(source) && HasObject(target)) {
        Status s = out.AddEdge(source, property, target);
        assert(s.ok());
        (void)s;
      }
    }
  }
  return out;
}

PartialInstance PartialInstance::Restrict(const Instance& instance,
                                          const SchemaItemSet& items) {
  PartialInstance out(&instance.schema());
  for (ClassId c : items.classes()) {
    const auto& objs = instance.objects(c);
    if (!objs.empty()) out.objects_[c] = objs;
  }
  for (PropertyId p : items.properties()) {
    const auto& pairs = instance.edges(p);
    if (!pairs.empty()) out.edges_[p] = pairs;
  }
  return out;
}

}  // namespace setrec
