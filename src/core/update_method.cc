#include "core/update_method.h"

namespace setrec {

Status UpdateMethod::CheckReceiver(const Instance& instance,
                                   const Receiver& receiver) const {
  if (!receiver.IsValidOver(signature_, instance)) {
    return Status::FailedPrecondition(
        "receiver is not valid over the instance for method " +
        (name_.empty() ? std::string("<anonymous>") : name_));
  }
  return Status::OK();
}

std::unique_ptr<UpdateMethod> MakeMethod(MethodSignature signature,
                                         std::string name,
                                         FunctionalUpdateMethod::Body body) {
  return std::make_unique<FunctionalUpdateMethod>(
      std::move(signature), std::move(name), std::move(body));
}

}  // namespace setrec
