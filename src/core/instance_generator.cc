#include "core/instance_generator.h"

#include <algorithm>
#include <cassert>

namespace setrec {

Instance InstanceGenerator::RandomInstance(const Options& options) {
  Instance instance(schema_);
  const std::uint32_t lo = options.min_objects_per_class;
  const std::uint32_t hi = std::max(options.max_objects_per_class, lo);
  for (ClassId c = 0; c < schema_->num_classes(); ++c) {
    std::uint32_t n =
        lo + static_cast<std::uint32_t>(rng_.UniformInt(hi - lo + 1));
    for (std::uint32_t i = 0; i < n; ++i) {
      Status s = instance.AddObject(ObjectId(c, i));
      assert(s.ok());
      (void)s;
    }
  }
  for (PropertyId p = 0; p < schema_->num_properties(); ++p) {
    const Schema::PropertyDef& def = schema_->property(p);
    for (ObjectId src : instance.objects(def.source)) {
      for (ObjectId dst : instance.objects(def.target)) {
        if (rng_.Bernoulli(options.edge_probability)) {
          Status s = instance.AddEdge(src, p, dst);
          assert(s.ok());
          (void)s;
        }
      }
    }
  }
  return instance;
}

std::vector<Receiver> InstanceGenerator::AllReceivers(
    const Instance& instance, const MethodSignature& signature) {
  std::vector<Receiver> out;
  std::vector<ObjectId> current;
  // Iterative Cartesian product over the signature's class populations.
  std::vector<std::vector<ObjectId>> pools;
  pools.reserve(signature.size());
  for (std::size_t i = 0; i < signature.size(); ++i) {
    const auto& objs = instance.objects(signature.class_at(i));
    if (objs.empty()) return out;  // no receivers at all
    pools.emplace_back(objs.begin(), objs.end());
  }
  std::vector<std::size_t> idx(signature.size(), 0);
  while (true) {
    current.clear();
    for (std::size_t i = 0; i < signature.size(); ++i) {
      current.push_back(pools[i][idx[i]]);
    }
    out.push_back(Receiver::Unchecked(current));
    std::size_t pos = signature.size();
    while (pos > 0) {
      --pos;
      if (++idx[pos] < pools[pos].size()) break;
      idx[pos] = 0;
      if (pos == 0) return out;
    }
  }
}

std::vector<Receiver> InstanceGenerator::RandomReceiverSet(
    const Instance& instance, const MethodSignature& signature,
    std::size_t count) {
  std::vector<Receiver> all = AllReceivers(instance, signature);
  // Fisher–Yates prefix shuffle of the desired size.
  const std::size_t take = std::min(count, all.size());
  for (std::size_t i = 0; i < take; ++i) {
    std::size_t j = i + rng_.UniformInt(all.size() - i);
    std::swap(all[i], all[j]);
  }
  all.erase(all.begin() + static_cast<std::ptrdiff_t>(take), all.end());
  std::sort(all.begin(), all.end());
  return all;
}

std::vector<Receiver> InstanceGenerator::RandomKeySet(
    const Instance& instance, const MethodSignature& signature,
    std::size_t count) {
  std::vector<Receiver> candidates = AllReceivers(instance, signature);
  // Shuffle, then greedily keep receivers with fresh receiving objects.
  for (std::size_t i = 0; i + 1 < candidates.size(); ++i) {
    std::size_t j = i + rng_.UniformInt(candidates.size() - i);
    std::swap(candidates[i], candidates[j]);
  }
  std::vector<Receiver> out;
  std::set<ObjectId> used;
  for (const Receiver& r : candidates) {
    if (out.size() >= count) break;
    if (used.insert(r.receiving_object()).second) out.push_back(r);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace setrec
