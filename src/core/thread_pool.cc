#include "core/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace setrec {

namespace {

/// Per-ParallelFor completion state, shared by the runner closures enqueued
/// on the pool. Runners claim task indices through `next` (monotonically
/// increasing, so indices are started in order) and the issuing thread
/// blocks on `done_cv` until every index has finished.
struct BatchState {
  std::atomic<std::size_t> next{0};
  std::size_t num_tasks = 0;
  const std::function<void(std::size_t)>* fn = nullptr;

  std::mutex mu;
  std::condition_variable done_cv;
  std::size_t completed = 0;  // guarded by mu
};

void RunBatch(const std::shared_ptr<BatchState>& state) {
  std::size_t finished = 0;
  for (;;) {
    const std::size_t i =
        state->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= state->num_tasks) break;
    (*state->fn)(i);
    ++finished;
  }
  if (finished == 0) return;
  std::lock_guard<std::mutex> lock(state->mu);
  state->completed += finished;
  if (state->completed == state->num_tasks) state->done_cv.notify_all();
}

}  // namespace

ThreadPool::ThreadPool(std::size_t num_workers) {
  const std::size_t n = std::max<std::size_t>(1, num_workers);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(std::size_t num_tasks,
                             const std::function<void(std::size_t)>& fn) {
  if (num_tasks == 0) return;
  if (num_tasks == 1 || workers_.size() == 1) {
    // Sequential degradation: run on the calling thread, no handoff cost.
    for (std::size_t i = 0; i < num_tasks; ++i) fn(i);
    return;
  }
  auto state = std::make_shared<BatchState>();
  state->num_tasks = num_tasks;
  state->fn = &fn;
  const std::size_t runners = std::min(workers_.size(), num_tasks);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t r = 0; r < runners; ++r) {
      queue_.emplace_back([state] { RunBatch(state); });
    }
  }
  work_available_.notify_all();
  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock,
                      [&] { return state->completed == state->num_tasks; });
}

void ThreadPool::Post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.emplace_back(std::move(task));
  }
  work_available_.notify_one();
}

std::size_t ThreadPool::DefaultWorkerCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) return 1;
  return std::min<std::size_t>(hw, 64);
}

}  // namespace setrec
