#include "core/printer.h"

#include <sstream>

namespace setrec {

std::string ObjectName(const Schema& schema, ObjectId object) {
  std::ostringstream out;
  out << schema.class_name(object.class_id()) << "_" << object.index();
  return out.str();
}

std::string SchemaToString(const Schema& schema) {
  std::ostringstream out;
  out << "schema {\n";
  for (ClassId c = 0; c < schema.num_classes(); ++c) {
    out << "  class " << schema.class_name(c) << "\n";
  }
  for (PropertyId p = 0; p < schema.num_properties(); ++p) {
    const Schema::PropertyDef& def = schema.property(p);
    out << "  " << schema.class_name(def.source) << " --" << def.name
        << "--> " << schema.class_name(def.target) << "\n";
  }
  out << "}";
  return out.str();
}

std::string InstanceToString(const Instance& instance) {
  const Schema& schema = instance.schema();
  std::ostringstream out;
  out << "instance {\n";
  for (ClassId c = 0; c < schema.num_classes(); ++c) {
    const auto& objs = instance.objects(c);
    if (objs.empty()) continue;
    out << "  " << schema.class_name(c) << ":";
    for (ObjectId o : objs) out << " " << ObjectName(schema, o);
    out << "\n";
  }
  for (PropertyId p = 0; p < schema.num_properties(); ++p) {
    for (const auto& [src, dst] : instance.edges(p)) {
      out << "  " << ObjectName(schema, src) << " --"
          << schema.property(p).name << "--> " << ObjectName(schema, dst)
          << "\n";
    }
  }
  out << "}";
  return out.str();
}

std::string ReceiverToString(const Schema& schema, const Receiver& receiver) {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < receiver.size(); ++i) {
    if (i > 0) out << ", ";
    out << ObjectName(schema, receiver.object_at(i));
  }
  out << "]";
  return out.str();
}

}  // namespace setrec
