#include "core/combination.h"

#include <vector>

#include "core/partial_instance.h"

namespace setrec {

namespace {

Result<std::vector<Instance>> PerReceiverResults(
    const UpdateMethod& method, const Instance& instance,
    std::span<const Receiver> receivers) {
  std::vector<Instance> results;
  results.reserve(receivers.size());
  for (const Receiver& t : receivers) {
    SETREC_ASSIGN_OR_RETURN(Instance di, method.Apply(instance, t));
    results.push_back(std::move(di));
  }
  return results;
}

}  // namespace

Result<Instance> ApplyCombinationUnion(const UpdateMethod& method,
                                       const Instance& instance,
                                       std::span<const Receiver> receivers) {
  if (receivers.empty()) return instance;
  SETREC_ASSIGN_OR_RETURN(std::vector<Instance> results,
                          PerReceiverResults(method, instance, receivers));
  PartialInstance acc = PartialInstance::FromInstance(results[0]);
  for (std::size_t i = 1; i < results.size(); ++i) {
    acc = acc.Union(PartialInstance::FromInstance(results[i]));
  }
  // A union of proper instances is proper, so G is the identity here; it is
  // applied anyway to return an Instance.
  return acc.G();
}

Result<Instance> ApplyCombinationRefined(const UpdateMethod& method,
                                         const Instance& instance,
                                         std::span<const Receiver> receivers) {
  if (receivers.empty()) return instance;
  SETREC_ASSIGN_OR_RETURN(std::vector<Instance> results,
                          PerReceiverResults(method, instance, receivers));
  const PartialInstance input = PartialInstance::FromInstance(instance);
  PartialInstance meet = PartialInstance::FromInstance(results[0]);
  PartialInstance additions = meet.Difference(input);
  for (std::size_t i = 1; i < results.size(); ++i) {
    PartialInstance di = PartialInstance::FromInstance(results[i]);
    meet = meet.Intersection(di);
    additions = additions.Union(di.Difference(input));
  }
  return meet.Union(additions).G();
}

}  // namespace setrec
