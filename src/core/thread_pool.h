#ifndef SETREC_CORE_THREAD_POOL_H_
#define SETREC_CORE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace setrec {

/// A fixed-size pool of worker threads for the data-parallel kernels
/// (sharded parallel application, partitioned hash-join probes).
///
/// Design constraints, in order:
///   1. *Deterministic results.* The pool never decides in which order
///      results are combined — ParallelFor hands out task indices and the
///      caller merges per-index outputs in index order, so the observable
///      outcome of a parallel computation is independent of scheduling.
///   2. *No surprise threads.* Exactly `num_workers` threads are created at
///      construction and joined at destruction; ParallelFor(1, f) and a
///      1-worker pool degrade to strictly sequential execution.
///   3. *Status, not exceptions.* Tasks must not throw; governed kernels
///      communicate failure by writing a Status into their per-index slot
///      (see ParallelApply), keeping the pool oblivious to error policy.
///
/// A pool is reusable and thread-compatible: concurrent ParallelFor calls
/// from different threads are safe (each call tracks its own completion),
/// though the intended pattern is one orchestrating thread per pool.
class ThreadPool {
 public:
  /// Spawns exactly max(1, num_workers) worker threads.
  explicit ThreadPool(std::size_t num_workers);

  /// Drains pending work and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_workers() const { return workers_.size(); }

  /// Runs fn(i) for every i in [0, num_tasks), distributing indices across
  /// the workers in increasing claim order, and blocks until all complete.
  /// `fn` must not throw; distinct indices may run concurrently, so fn must
  /// only touch per-index state (or properly synchronized shared state).
  void ParallelFor(std::size_t num_tasks,
                   const std::function<void(std::size_t)>& fn);

  /// Enqueues a fire-and-forget task on the pool (the network server posts
  /// its session loops this way). Unlike ParallelFor there is no completion
  /// barrier: the caller is responsible for its own lifecycle signalling
  /// (the server counts active sessions under a condition variable). Tasks
  /// posted before destruction are drained: the destructor lets workers
  /// finish the queue before joining, so a posted task always runs.
  void Post(std::function<void()> task);

  /// std::thread::hardware_concurrency clamped to [1, 64] (0 on exotic
  /// platforms means "unknown", which we treat as 1).
  static std::size_t DefaultWorkerCount();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::deque<std::function<void()>> queue_;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace setrec

#endif  // SETREC_CORE_THREAD_POOL_H_
