#ifndef SETREC_CORE_INSTANCE_H_
#define SETREC_CORE_INSTANCE_H_

#include <compare>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "core/ids.h"
#include "core/schema.h"
#include "core/status.h"

namespace setrec {

/// A property link (o, e, p) between two objects (Definition 2.2).
struct Edge {
  ObjectId source;
  PropertyId property;
  ObjectId target;

  friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// An instance of an object-base schema (Definition 2.2): a finite labeled
/// directed graph whose nodes are objects and whose edges are property links
/// conforming to the schema. An Instance is always a *proper* graph — every
/// edge's endpoints are present (contrast PartialInstance). All mutators
/// preserve this invariant: RemoveObject also removes incident edges.
///
/// Equality is full graph equality (same objects, same edges), which is the
/// notion of sameness used by all order-independence definitions.
class Instance {
 public:
  /// An empty instance of `schema`; the schema must outlive the instance.
  explicit Instance(const Schema* schema);

  const Schema& schema() const { return *schema_; }

  // -- Mutators (all preserve graph validity) --------------------------------

  /// Inserts an object; no-op (OK) if already present. Fails if the object's
  /// class is unknown to the schema.
  Status AddObject(ObjectId object);

  /// Inserts the edge (source, property, target). Fails unless the property
  /// exists, both endpoints are present, and their classes match the
  /// property's declaration. No-op (OK) if the edge already exists.
  Status AddEdge(ObjectId source, PropertyId property, ObjectId target);
  Status AddEdge(const Edge& e) { return AddEdge(e.source, e.property, e.target); }

  /// Removes an edge; no-op (OK) if absent.
  Status RemoveEdge(ObjectId source, PropertyId property, ObjectId target);

  /// Removes an object *and all its incident edges* (so that the result is
  /// again a proper graph); no-op (OK) if absent.
  Status RemoveObject(ObjectId object);

  /// Removes every `property` edge leaving `source`. Used by the algebraic
  /// update semantics (Definition 5.4(5)), which replaces all a-edges leaving
  /// the receiving object.
  Status ClearEdgesFrom(ObjectId source, PropertyId property);

  // -- Queries ----------------------------------------------------------------

  bool HasObject(ObjectId object) const;
  bool HasEdge(ObjectId source, PropertyId property, ObjectId target) const;

  /// The class C of `class_id` — all objects labeled by that class name.
  const std::set<ObjectId>& objects(ClassId class_id) const;

  /// All (source, target) pairs linked by `property`, in sorted order.
  const std::set<std::pair<ObjectId, ObjectId>>& edges(
      PropertyId property) const;

  /// Targets of `property` edges leaving `source`, in sorted order.
  std::vector<ObjectId> Targets(ObjectId source, PropertyId property) const;

  std::size_t num_objects() const;
  std::size_t num_edges() const;

  /// Every object of every class, in (class, index) order.
  std::vector<ObjectId> AllObjects() const;
  /// Every edge of every property, in (property, source, target) order.
  std::vector<Edge> AllEdges() const;

  /// True when every object and edge of this instance is also in `other`.
  /// This is the item-set inclusion I ⊆ J used to define inflationary and
  /// deflationary updates (Propositions 4.10 and 4.19).
  bool IsSubInstanceOf(const Instance& other) const;

  friend bool operator==(const Instance& a, const Instance& b) {
    return a.objects_ == b.objects_ && a.edges_ == b.edges_;
  }

 private:
  friend class PartialInstance;

  const Schema* schema_;
  // Keyed maps keep iteration deterministic; absent keys mean empty sets.
  std::map<ClassId, std::set<ObjectId>> objects_;
  std::map<PropertyId, std::set<std::pair<ObjectId, ObjectId>>> edges_;
};

/// The item-set difference between two instances over the same schema: the
/// physical redo record of a committed statement. Applying a delta to the
/// "before" instance reproduces the "after" instance exactly, which is what
/// the durability layer (store/) persists per commit and replays on
/// recovery. All four vectors are sorted (the order AllObjects/AllEdges
/// produce), making deltas canonical: equal state changes print identically.
struct InstanceDelta {
  std::vector<ObjectId> removed_objects;
  std::vector<ObjectId> added_objects;
  std::vector<Edge> removed_edges;
  std::vector<Edge> added_edges;

  bool empty() const {
    return removed_objects.empty() && added_objects.empty() &&
           removed_edges.empty() && added_edges.empty();
  }
  std::size_t size() const {
    return removed_objects.size() + added_objects.size() +
           removed_edges.size() + added_edges.size();
  }

  friend bool operator==(const InstanceDelta&, const InstanceDelta&) = default;
};

/// Computes the canonical delta taking `before` to `after`. Both instances
/// must be over the same schema.
InstanceDelta DiffInstances(const Instance& before, const Instance& after);

/// Applies a delta in redo order (remove edges, remove objects, add objects,
/// add edges). Fails atomically-in-effect only when the delta does not fit
/// the instance (e.g. an added edge's endpoint is absent) — callers that
/// need all-or-nothing semantics snapshot first, as the SQL engine does.
Status ApplyDelta(Instance& instance, const InstanceDelta& delta);

}  // namespace setrec

#endif  // SETREC_CORE_INSTANCE_H_
