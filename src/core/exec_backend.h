#ifndef SETREC_CORE_EXEC_BACKEND_H_
#define SETREC_CORE_EXEC_BACKEND_H_

#include <cstdint>

namespace setrec {

/// Which execution backend evaluates relational algebra expressions. The
/// two backends are observationally identical on everything *logical* —
/// results, error statuses, EvalNodeStats (rows/build/probe/hits) and the
/// LogicalCounterNames() engine counters — so the choice is purely a
/// performance knob; the differential test suite pins the equivalence.
enum class ExecBackend : std::uint8_t {
  /// Cost-based selection, latched once per Evaluator so a DAG of
  /// expressions sharing subtrees is served by one memo: the compiled
  /// vectorized engine when the referenced relations are large enough to
  /// amortize batching and no multi-worker pool is attached (the
  /// partitioned parallel probe is an interpreter feature), the
  /// interpreter otherwise.
  kAuto,
  /// The tuple-at-a-time tree-walking interpreter — the differential
  /// oracle all other backends are tested against.
  kInterpreter,
  /// Columnar batch execution: expressions are lowered to a flat bytecode
  /// over structure-of-arrays tuple batches (relational/vectorized/).
  /// Falls back to the interpreter per expression if a node type is ever
  /// outside the compiled backend's coverage.
  kVectorized,
};

/// Stable lowercase name, e.g. for logs and plan renderings.
inline constexpr const char* ExecBackendName(ExecBackend backend) {
  switch (backend) {
    case ExecBackend::kAuto:
      return "auto";
    case ExecBackend::kInterpreter:
      return "interpreter";
    case ExecBackend::kVectorized:
      return "vectorized";
  }
  return "auto";
}

}  // namespace setrec

#endif  // SETREC_CORE_EXEC_BACKEND_H_
