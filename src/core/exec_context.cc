#include "core/exec_context.h"

namespace setrec {

ExecContext& ExecContext::Default() {
  // One permissive context per thread: mutation of its step counter from
  // concurrently running computations on different threads never races.
  thread_local ExecContext ctx;
  return ctx;
}

}  // namespace setrec
