#include "core/exec_context.h"

namespace setrec {

ExecContext& ExecContext::Default() {
  // One permissive context per thread: mutation of its step counter from
  // concurrently running computations on different threads never races.
  thread_local ExecContext ctx;
  return ctx;
}

ExecContext ExecContext::Fork() {
  if (shared_ == nullptr) {
    // First fork: migrate this context's accumulated accounting into shared
    // atomic storage so parent and children keep one exact global tally.
    auto shared = std::make_shared<SharedBudget>();
    shared->steps.store(steps_, std::memory_order_relaxed);
    shared->rows.store(rows_, std::memory_order_relaxed);
    shared->memory_in_use.store(memory_in_use_, std::memory_order_relaxed);
    shared->memory_high_water.store(memory_high_water_,
                                    std::memory_order_relaxed);
    if (cancelled_.load(std::memory_order_relaxed)) {
      shared->cancelled.store(true, std::memory_order_relaxed);
    }
    shared_ = std::move(shared);
  }
  return ExecContext(ForkTag{}, *this);
}

}  // namespace setrec
