#ifndef SETREC_CORE_UPDATE_METHOD_H_
#define SETREC_CORE_UPDATE_METHOD_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "core/instance.h"
#include "core/receiver.h"
#include "core/status.h"

namespace setrec {

/// An update method of some signature σ (Definition 2.6): a computable
/// function that maps an instance I and a receiver t over I of type σ to a
/// new instance M(I, t) of the same schema.
///
/// Apply may return a non-OK status to model partiality: `Diverges` plays
/// the role of non-termination in the witness constructions of Proposition
/// 4.13, and other errors signal contract violations (e.g. a receiver that
/// is not valid over the given instance).
class UpdateMethod {
 public:
  explicit UpdateMethod(MethodSignature signature, std::string name = "")
      : signature_(std::move(signature)), name_(std::move(name)) {}
  virtual ~UpdateMethod() = default;

  UpdateMethod(const UpdateMethod&) = delete;
  UpdateMethod& operator=(const UpdateMethod&) = delete;

  const MethodSignature& signature() const { return signature_; }
  /// Optional human-readable name, used by printers and error messages.
  const std::string& name() const { return name_; }

  /// Computes M(instance, receiver). Implementations may assume the receiver
  /// has the signature's arity but must tolerate (and report) receivers that
  /// are not valid over `instance`.
  virtual Result<Instance> Apply(const Instance& instance,
                                 const Receiver& receiver) const = 0;

 protected:
  /// Standard guard shared by implementations: fails unless `receiver` is a
  /// receiver over `instance` of this method's type.
  Status CheckReceiver(const Instance& instance,
                       const Receiver& receiver) const;

 private:
  MethodSignature signature_;
  std::string name_;
};

/// Wraps an arbitrary callable as an update method. This realizes the
/// paper's most general notion of update method ("some computable function",
/// Definition 2.6) and is the form used by the coloring witnesses, the
/// counterexample families, and ad-hoc tests.
class FunctionalUpdateMethod final : public UpdateMethod {
 public:
  using Body =
      std::function<Result<Instance>(const Instance&, const Receiver&)>;

  FunctionalUpdateMethod(MethodSignature signature, std::string name,
                         Body body)
      : UpdateMethod(std::move(signature), std::move(name)),
        body_(std::move(body)) {}

  Result<Instance> Apply(const Instance& instance,
                         const Receiver& receiver) const override {
    SETREC_RETURN_IF_ERROR(CheckReceiver(instance, receiver));
    return body_(instance, receiver);
  }

 private:
  Body body_;
};

/// Convenience factory for FunctionalUpdateMethod.
std::unique_ptr<UpdateMethod> MakeMethod(MethodSignature signature,
                                         std::string name,
                                         FunctionalUpdateMethod::Body body);

}  // namespace setrec

#endif  // SETREC_CORE_UPDATE_METHOD_H_
