#ifndef SETREC_CORE_STATUS_H_
#define SETREC_CORE_STATUS_H_

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace setrec {

/// Error categories used across the library. The unusual `kDiverges` code
/// models the deliberately non-terminating update methods constructed in the
/// proof of Proposition 4.13: instead of looping forever, a witness method
/// reports divergence, preserving the observable semantics (undefinedness).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kFailedPrecondition,
  kNotFound,
  kAlreadyExists,
  kDiverges,
  kUnimplemented,
  kInternal,
  // Resource-governance codes (see core/exec_context.h). A computation that
  // ran out of its cooperative budget reports one of these instead of
  // hanging; they are the only retryable codes — retrying with a larger
  // budget or later deadline can succeed, whereas the codes above are
  // deterministic properties of the input.
  kResourceExhausted,
  kDeadlineExceeded,
  kCancelled,
  // Storage-layer code (see store/wal.h). A persisted log or snapshot failed
  // its integrity checks (bad CRC, short record, sequence break). Not
  // retryable: the bytes on disk will not improve; recovery instead replays
  // the longest valid prefix and reports what was dropped.
  kCorruptedLog,
  // Transaction-layer codes (see txn/txn_manager.h). kTxnConflict reports a
  // first-committer-wins validation failure: a concurrent commit overwrote
  // part of the snapshot this transaction read. Retryable — a fresh snapshot
  // can succeed. kRetryExhausted is its terminal form: the retry schedule ran
  // out of attempts; by construction retrying again is pointless.
  kTxnConflict,
  kRetryExhausted,
};

/// Returns a short human-readable name for a status code ("InvalidArgument").
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kDiverges:
      return "Diverges";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kCorruptedLog:
      return "CorruptedLog";
    case StatusCode::kTxnConflict:
      return "TxnConflict";
    case StatusCode::kRetryExhausted:
      return "RetryExhausted";
  }
  return "Unknown";
}

/// A RocksDB/Arrow-style status object. Functions that can fail return a
/// `Status` (or a `Result<T>` when they also produce a value); no exceptions
/// cross the public API.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Diverges(std::string msg) {
    return Status(StatusCode::kDiverges, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status CorruptedLog(std::string msg) {
    return Status(StatusCode::kCorruptedLog, std::move(msg));
  }
  static Status TxnConflict(std::string msg) {
    return Status(StatusCode::kTxnConflict, std::move(msg));
  }
  static Status RetryExhausted(std::string msg) {
    return Status(StatusCode::kRetryExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// True for failures a caller may retry and expect to succeed: budget and
  /// deadline exhaustion (retry with a larger budget or later deadline) and
  /// first-committer-wins conflicts (retry against a fresh snapshot).
  /// Cancellation is deliberately *not* retryable: the caller asked for the
  /// abort and auto-retry would defeat it. kRetryExhausted is not either —
  /// it *is* the report that retrying stopped helping.
  bool IsRetryable() const {
    return code_ == StatusCode::kResourceExhausted ||
           code_ == StatusCode::kDeadlineExceeded ||
           code_ == StatusCode::kTxnConflict;
  }

  /// Renders as "Code: message" (or "OK").
  std::string ToString() const {
    if (ok()) return "OK";
    std::string out = StatusCodeName(code_);
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or a non-OK Status explaining why the value is
/// absent. Accessing `value()` on an errored result aborts in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}
  /// Implicit construction from an error status.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "OK status requires a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return *std::move(value_);
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  /// Unwrapping an errored Result is a programming error; fail loudly (also
  /// in release builds) instead of dereferencing an empty optional.
  void CheckOk() const {
    if (!ok()) {
      std::fprintf(stderr, "Result::value() on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

/// True for statuses produced by the resource-governance layer (budget,
/// deadline, cancellation). Callers that tolerate *semantic* failures (e.g.
/// "this enumeration is undefined") must still propagate these: they mean
/// "the answer was not computed", not "the answer is negative".
inline bool IsGovernanceError(const Status& s) {
  return s.code() == StatusCode::kResourceExhausted ||
         s.code() == StatusCode::kDeadlineExceeded ||
         s.code() == StatusCode::kCancelled;
}

/// Propagates a non-OK status out of the current function.
#define SETREC_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::setrec::Status _setrec_status = (expr);   \
    if (!_setrec_status.ok()) return _setrec_status; \
  } while (0)

/// Evaluates a Result-returning expression, propagating errors, and binds the
/// unwrapped value to `lhs`.
#define SETREC_ASSIGN_OR_RETURN(lhs, expr)                    \
  auto SETREC_CONCAT_(_setrec_result_, __LINE__) = (expr);    \
  if (!SETREC_CONCAT_(_setrec_result_, __LINE__).ok())        \
    return SETREC_CONCAT_(_setrec_result_, __LINE__).status(); \
  lhs = std::move(SETREC_CONCAT_(_setrec_result_, __LINE__)).value()

#define SETREC_CONCAT_INNER_(a, b) a##b
#define SETREC_CONCAT_(a, b) SETREC_CONCAT_INNER_(a, b)

}  // namespace setrec

#endif  // SETREC_CORE_STATUS_H_
