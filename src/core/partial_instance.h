#ifndef SETREC_CORE_PARTIAL_INSTANCE_H_
#define SETREC_CORE_PARTIAL_INSTANCE_H_

#include <map>
#include <set>
#include <utility>

#include "core/ids.h"
#include "core/instance.h"
#include "core/item_set.h"
#include "core/schema.h"
#include "core/status.h"

namespace setrec {

/// A partial instance (Definition 4.3): a subset of some instance viewed as
/// a set of items. Unlike Instance, a PartialInstance may contain "dangling"
/// edges whose endpoints were removed. Set-theoretic union and difference
/// operate item-wise, and the G operator (Definition 4.4) recovers the
/// largest proper instance contained in the item set.
class PartialInstance {
 public:
  explicit PartialInstance(const Schema* schema);

  /// Views an instance as the set of its items.
  static PartialInstance FromInstance(const Instance& instance);

  const Schema& schema() const { return *schema_; }

  /// Inserts items without any dangling-edge checks (typing is still
  /// enforced: the edge label must exist and endpoint classes must match).
  Status AddObject(ObjectId object);
  Status AddEdge(ObjectId source, PropertyId property, ObjectId target);

  bool HasObject(ObjectId object) const;
  bool HasEdge(ObjectId source, PropertyId property, ObjectId target) const;

  std::size_t num_items() const;
  bool empty() const { return num_items() == 0; }

  /// Item-wise union J ∪ K.
  PartialInstance Union(const PartialInstance& other) const;
  /// Item-wise difference J − K.
  PartialInstance Difference(const PartialInstance& other) const;
  /// Item-wise intersection J ∩ K.
  PartialInstance Intersection(const PartialInstance& other) const;

  /// The operator G (Definition 4.4): the largest instance contained in this
  /// partial instance, i.e. this item set with all dangling edges removed.
  Instance G() const;

  /// The restriction I|X (Definition 4.5): removes every item whose schema
  /// label is not in `items`. Classes absent from X lose their objects;
  /// properties absent from X lose their edges (possibly leaving danglers).
  static PartialInstance Restrict(const Instance& instance,
                                  const SchemaItemSet& items);

  friend bool operator==(const PartialInstance& a, const PartialInstance& b) {
    return a.objects_ == b.objects_ && a.edges_ == b.edges_;
  }

 private:
  const Schema* schema_;
  std::map<ClassId, std::set<ObjectId>> objects_;
  std::map<PropertyId, std::set<std::pair<ObjectId, ObjectId>>> edges_;
};

}  // namespace setrec

#endif  // SETREC_CORE_PARTIAL_INSTANCE_H_
