#ifndef SETREC_CORE_EXEC_CONTEXT_H_
#define SETREC_CORE_EXEC_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "core/fault_injection.h"
#include "core/status.h"

namespace setrec {

/// Cooperative resource governance for the worst-case-exponential kernels
/// (chase, homomorphism search, representative-set enumeration, permutation
/// oracles, relational evaluation). Every hot loop calls back into an
/// ExecContext at named probe points; the context converts "too much work"
/// into a typed non-OK Status instead of a hang or an OOM:
///
///   * step budget        → kResourceExhausted  (deterministic, portable)
///   * wall-clock deadline → kDeadlineExceeded  (checked every few steps to
///                            keep the clock off the hot path)
///   * row budget          → kResourceExhausted (materialized tuples, the
///                            evaluator's dominant cost)
///   * memory high-water   → kResourceExhausted (cooperatively charged
///                            bytes; an approximation, not an allocator hook)
///   * cancellation        → kCancelled         (internal flag or an
///                            external std::atomic<bool>, so another thread
///                            or a signal handler can abort a computation)
///
/// A default-constructed context is fully permissive; every governed entry
/// point takes `ExecContext& ctx = ExecContext::Default()` so existing
/// callers keep working unchanged. Checks are cooperative: a context only
/// observes the work that is reported to it, and aborting never corrupts
/// state — all governed code paths unwind through Status propagation (the
/// fault-injection tests prove this at every probe point).
///
/// A context is single-owner mutable state (counters); do not share one
/// between concurrently running computations. The cancellation flag is the
/// one cross-thread channel: RequestCancel()/BindCancelFlag() are safe to
/// use from another thread.
class ExecContext {
 public:
  using Clock = std::chrono::steady_clock;

  struct Limits {
    /// Maximum cooperative steps (CheckPoint calls); 0 = unlimited.
    std::uint64_t max_steps = 0;
    /// Wall-clock allowance from context construction; zero = no deadline.
    std::chrono::nanoseconds timeout{0};
    /// Maximum materialized rows charged via ChargeRows; 0 = unlimited.
    std::uint64_t max_rows = 0;
    /// High-water cap on cooperatively charged bytes; 0 = unlimited.
    std::uint64_t max_memory_bytes = 0;
  };

  /// Permissive: never trips (still counts steps, for observability).
  ExecContext() = default;

  /// Governed: the deadline (if any) starts ticking now.
  explicit ExecContext(const Limits& limits)
      : limits_(limits),
        deadline_(limits.timeout > std::chrono::nanoseconds::zero()
                      ? Clock::now() + limits.timeout
                      : Clock::time_point::max()) {}

  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  /// The shared permissive default, one per thread. Used as the default
  /// argument of every governed API. Do not attach limits or injectors to
  /// it — construct a local context instead.
  static ExecContext& Default();

  /// Convenience limit builders.
  static Limits StepBudget(std::uint64_t max_steps) {
    Limits l;
    l.max_steps = max_steps;
    return l;
  }
  static Limits Deadline(std::chrono::nanoseconds timeout) {
    Limits l;
    l.timeout = timeout;
    return l;
  }

  /// The cooperative check every governed loop iteration performs: counts a
  /// step, consults the fault injector, then cancellation, step budget, and
  /// (periodically) the wall clock. `probe_point` is a stable name for the
  /// call site, used by fault injection and error messages.
  Status CheckPoint(const char* probe_point) {
    ++steps_;
    if (injector_ != nullptr) {
      Status injected = injector_->Probe(probe_point);
      if (!injected.ok()) return injected;
    }
    if (cancel_requested()) {
      return Status::Cancelled(std::string("cancelled at ") + probe_point);
    }
    if (limits_.max_steps != 0 && steps_ > limits_.max_steps) {
      return Status::ResourceExhausted(
          std::string("step budget exhausted at ") + probe_point);
    }
    if (deadline_ != Clock::time_point::max()) {
      if (deadline_countdown_ == 0) {
        deadline_countdown_ = kDeadlineCheckStride;
        if (Clock::now() >= deadline_) {
          return Status::DeadlineExceeded(
              std::string("deadline exceeded at ") + probe_point);
        }
      } else {
        --deadline_countdown_;
      }
    }
    return Status::OK();
  }

  /// Accounts `rows` materialized tuples (also a checkpoint).
  Status ChargeRows(std::uint64_t rows, const char* probe_point) {
    rows_ += rows;
    if (limits_.max_rows != 0 && rows_ > limits_.max_rows) {
      return Status::ResourceExhausted(
          std::string("row budget exhausted at ") + probe_point);
    }
    return CheckPoint(probe_point);
  }

  /// Accounts `bytes` of cooperative memory and updates the high-water mark
  /// (also a checkpoint).
  Status ChargeMemory(std::uint64_t bytes, const char* probe_point) {
    memory_in_use_ += bytes;
    if (memory_in_use_ > memory_high_water_) {
      memory_high_water_ = memory_in_use_;
    }
    if (limits_.max_memory_bytes != 0 &&
        memory_in_use_ > limits_.max_memory_bytes) {
      return Status::ResourceExhausted(
          std::string("memory high-water cap exceeded at ") + probe_point);
    }
    return CheckPoint(probe_point);
  }

  /// Returns previously charged bytes (high-water mark is kept).
  void ReleaseMemory(std::uint64_t bytes) {
    memory_in_use_ = bytes > memory_in_use_ ? 0 : memory_in_use_ - bytes;
  }

  // -- Cancellation ----------------------------------------------------------

  /// Requests cooperative abort; the next CheckPoint returns kCancelled.
  /// Safe to call from another thread.
  void RequestCancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Binds an external cancellation flag (e.g. owned by a server's request
  /// dispatcher); the context observes it in addition to RequestCancel().
  void BindCancelFlag(const std::atomic<bool>* flag) { external_cancel_ = flag; }

  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_relaxed) ||
           (external_cancel_ != nullptr &&
            external_cancel_->load(std::memory_order_relaxed));
  }

  // -- Fault injection -------------------------------------------------------

  /// Attaches a FaultInjector consulted at every probe point (nullptr
  /// detaches). The injector must outlive its use by the context.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  // -- Introspection ---------------------------------------------------------

  const Limits& limits() const { return limits_; }
  bool has_step_budget() const { return limits_.max_steps != 0; }
  bool has_deadline() const { return deadline_ != Clock::time_point::max(); }
  /// True when any limit can trip this context (ignores fault injection).
  bool limited() const {
    return has_step_budget() || has_deadline() || limits_.max_rows != 0 ||
           limits_.max_memory_bytes != 0;
  }
  std::uint64_t steps() const { return steps_; }
  std::uint64_t rows() const { return rows_; }
  std::uint64_t memory_in_use() const { return memory_in_use_; }
  std::uint64_t memory_high_water() const { return memory_high_water_; }

 private:
  /// The wall clock is read once per this many checkpoints: cheap enough to
  /// keep deadlines responsive, rare enough to keep checkpoints branch-only.
  static constexpr std::uint32_t kDeadlineCheckStride = 64;

  Limits limits_;
  Clock::time_point deadline_ = Clock::time_point::max();
  std::uint64_t steps_ = 0;
  std::uint64_t rows_ = 0;
  std::uint64_t memory_in_use_ = 0;
  std::uint64_t memory_high_water_ = 0;
  std::uint32_t deadline_countdown_ = 0;
  std::atomic<bool> cancelled_{false};
  const std::atomic<bool>* external_cancel_ = nullptr;
  FaultInjector* injector_ = nullptr;
};

}  // namespace setrec

#endif  // SETREC_CORE_EXEC_CONTEXT_H_
