#ifndef SETREC_CORE_EXEC_CONTEXT_H_
#define SETREC_CORE_EXEC_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "core/fault_injection.h"
#include "core/status.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"

namespace setrec {

/// Cooperative resource governance for the worst-case-exponential kernels
/// (chase, homomorphism search, representative-set enumeration, permutation
/// oracles, relational evaluation). Every hot loop calls back into an
/// ExecContext at named probe points; the context converts "too much work"
/// into a typed non-OK Status instead of a hang or an OOM:
///
///   * step budget        → kResourceExhausted  (deterministic, portable)
///   * wall-clock deadline → kDeadlineExceeded  (checked every few steps to
///                            keep the clock off the hot path)
///   * row budget          → kResourceExhausted (materialized tuples, the
///                            evaluator's dominant cost)
///   * memory high-water   → kResourceExhausted (cooperatively charged
///                            bytes; an approximation, not an allocator hook)
///   * cancellation        → kCancelled         (internal flag or an
///                            external std::atomic<bool>, so another thread
///                            or a signal handler can abort a computation)
///
/// A default-constructed context is fully permissive; every governed entry
/// point takes `ExecContext& ctx = ExecContext::Default()` so existing
/// callers keep working unchanged. Checks are cooperative: a context only
/// observes the work that is reported to it, and aborting never corrupts
/// state — all governed code paths unwind through Status propagation (the
/// fault-injection tests prove this at every probe point).
///
/// A context is single-owner mutable state (counters); do not share one
/// between concurrently running computations. The cancellation flag is the
/// one cross-thread channel: RequestCancel()/BindCancelFlag() are safe to
/// use from another thread.
///
/// For fan-out, Fork() creates *child* contexts that charge the same
/// budget: the first Fork migrates the parent's counters into shared atomic
/// storage, and from then on parent and children all account against those
/// atomics, so a step/row/byte cap is enforced exactly across every thread
/// of a parallel computation (the thread whose charge crosses the cap is
/// the one that trips). Cancellation is likewise pooled: RequestCancel on
/// any member cancels the whole family, which is how one failing shard
/// aborts its siblings promptly. Fork() itself must be called while no
/// other thread is charging this context (i.e. before dispatching work);
/// each child is then single-owner on its thread, like any context.
class ExecContext {
 public:
  using Clock = std::chrono::steady_clock;

  struct Limits {
    /// Maximum cooperative steps (CheckPoint calls); 0 = unlimited.
    std::uint64_t max_steps = 0;
    /// Wall-clock allowance from context construction; zero = no deadline.
    std::chrono::nanoseconds timeout{0};
    /// Maximum materialized rows charged via ChargeRows; 0 = unlimited.
    std::uint64_t max_rows = 0;
    /// High-water cap on cooperatively charged bytes; 0 = unlimited.
    std::uint64_t max_memory_bytes = 0;
  };

  /// Permissive: never trips (still counts steps, for observability).
  ExecContext() = default;

  /// Governed: the deadline (if any) starts ticking now.
  explicit ExecContext(const Limits& limits)
      : limits_(limits),
        deadline_(limits.timeout > std::chrono::nanoseconds::zero()
                      ? Clock::now() + limits.timeout
                      : Clock::time_point::max()) {}

  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  /// Move is supported so forked children can be stored in containers (one
  /// slot per worker). The moved-from context must not be used again.
  ExecContext(ExecContext&& other) noexcept
      : limits_(other.limits_),
        deadline_(other.deadline_),
        steps_(other.steps_),
        rows_(other.rows_),
        memory_in_use_(other.memory_in_use_),
        memory_high_water_(other.memory_high_water_),
        deadline_countdown_(other.deadline_countdown_),
        cancelled_(other.cancelled_.load(std::memory_order_relaxed)),
        external_cancel_(other.external_cancel_),
        injector_(other.injector_),
        tracer_(other.tracer_),
        metrics_(other.metrics_),
        recorder_(other.recorder_),
        trace_parent_(other.trace_parent_),
        trace_id_(other.trace_id_),
        shared_(std::move(other.shared_)) {}

  /// Creates a child context charging the same budget as this one (see the
  /// class comment). The child shares limits, deadline, fault injector and
  /// cancellation with its parent; counters become family-global.
  ExecContext Fork();

  /// The shared permissive default, one per thread. Used as the default
  /// argument of every governed API. Do not attach limits or injectors to
  /// it — construct a local context instead.
  static ExecContext& Default();

  /// Convenience limit builders.
  static Limits StepBudget(std::uint64_t max_steps) {
    Limits l;
    l.max_steps = max_steps;
    return l;
  }
  static Limits Deadline(std::chrono::nanoseconds timeout) {
    Limits l;
    l.timeout = timeout;
    return l;
  }

  /// The cooperative check every governed loop iteration performs: counts a
  /// step, consults the fault injector, then cancellation, step budget, and
  /// (periodically) the wall clock. `probe_point` is a stable name for the
  /// call site, used by fault injection and error messages.
  Status CheckPoint(const char* probe_point) {
    const std::uint64_t steps_now =
        shared_ != nullptr
            ? shared_->steps.fetch_add(1, std::memory_order_relaxed) + 1
            : ++steps_;
    if (injector_ != nullptr) {
      Status injected = injector_->Probe(probe_point);
      if (!injected.ok()) return RecordFailure(probe_point, injected);
    }
    if (cancel_requested()) {
      return RecordFailure(
          probe_point,
          Status::Cancelled(std::string("cancelled at ") + probe_point));
    }
    if (limits_.max_steps != 0 && steps_now > limits_.max_steps) {
      return RecordFailure(
          probe_point,
          Status::ResourceExhausted(std::string("step budget exhausted at ") +
                                    probe_point));
    }
    if (deadline_ != Clock::time_point::max()) {
      if (deadline_countdown_ == 0) {
        deadline_countdown_ = kDeadlineCheckStride;
        if (Clock::now() >= deadline_) {
          return RecordFailure(
              probe_point,
              Status::DeadlineExceeded(std::string("deadline exceeded at ") +
                                       probe_point));
        }
      } else {
        --deadline_countdown_;
      }
    }
    return Status::OK();
  }

  /// Accounts `rows` materialized tuples (also a checkpoint).
  Status ChargeRows(std::uint64_t rows, const char* probe_point) {
    const std::uint64_t rows_now =
        shared_ != nullptr
            ? shared_->rows.fetch_add(rows, std::memory_order_relaxed) + rows
            : (rows_ += rows);
    if (limits_.max_rows != 0 && rows_now > limits_.max_rows) {
      return RecordFailure(
          probe_point,
          Status::ResourceExhausted(std::string("row budget exhausted at ") +
                                    probe_point));
    }
    return CheckPoint(probe_point);
  }

  /// Accounts `bytes` of cooperative memory and updates the high-water mark
  /// (also a checkpoint).
  Status ChargeMemory(std::uint64_t bytes, const char* probe_point) {
    std::uint64_t in_use;
    if (shared_ != nullptr) {
      in_use = shared_->memory_in_use.fetch_add(bytes,
                                                std::memory_order_relaxed) +
               bytes;
      std::uint64_t hw =
          shared_->memory_high_water.load(std::memory_order_relaxed);
      while (hw < in_use &&
             !shared_->memory_high_water.compare_exchange_weak(
                 hw, in_use, std::memory_order_relaxed)) {
      }
    } else {
      in_use = memory_in_use_ += bytes;
      if (memory_in_use_ > memory_high_water_) {
        memory_high_water_ = memory_in_use_;
      }
    }
    if (limits_.max_memory_bytes != 0 && in_use > limits_.max_memory_bytes) {
      return RecordFailure(
          probe_point,
          Status::ResourceExhausted(
              std::string("memory high-water cap exceeded at ") +
              probe_point));
    }
    return CheckPoint(probe_point);
  }

  /// Returns previously charged bytes (high-water mark is kept).
  void ReleaseMemory(std::uint64_t bytes) {
    if (shared_ != nullptr) {
      std::uint64_t cur =
          shared_->memory_in_use.load(std::memory_order_relaxed);
      std::uint64_t next;
      do {
        next = bytes > cur ? 0 : cur - bytes;
      } while (!shared_->memory_in_use.compare_exchange_weak(
          cur, next, std::memory_order_relaxed));
      return;
    }
    memory_in_use_ = bytes > memory_in_use_ ? 0 : memory_in_use_ - bytes;
  }

  // -- Cancellation ----------------------------------------------------------

  /// Requests cooperative abort; the next CheckPoint returns kCancelled.
  /// Safe to call from another thread. On a forked family, cancels every
  /// member (parent and all children).
  void RequestCancel() {
    cancelled_.store(true, std::memory_order_relaxed);
    if (shared_ != nullptr) {
      shared_->cancelled.store(true, std::memory_order_relaxed);
    }
  }

  /// Binds an external cancellation flag (e.g. owned by a server's request
  /// dispatcher); the context observes it in addition to RequestCancel().
  void BindCancelFlag(const std::atomic<bool>* flag) { external_cancel_ = flag; }

  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_relaxed) ||
           (shared_ != nullptr &&
            shared_->cancelled.load(std::memory_order_relaxed)) ||
           (external_cancel_ != nullptr &&
            external_cancel_->load(std::memory_order_relaxed));
  }

  // -- Fault injection -------------------------------------------------------

  /// Attaches a FaultInjector consulted at every probe point (nullptr
  /// detaches). The injector must outlive its use by the context.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  // -- Observability ---------------------------------------------------------

  /// Attaches a Tracer / MetricsRegistry (nullptr detaches; both must
  /// outlive their use). Fork() propagates the attachment, so a fan-out's
  /// shards report into the same sinks. With nothing attached, every
  /// instrumentation site in the engine degrades to a null-pointer test —
  /// the "free when off" contract the benches measure.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }
  Tracer* tracer() const { return tracer_; }
  void set_metrics(MetricsRegistry* metrics) { metrics_ = metrics; }
  MetricsRegistry* metrics() const { return metrics_; }

  /// The flight recorder receiving this context's span/status breadcrumbs.
  /// Unlike the opt-in tracer/metrics sinks, the recorder is *always on*:
  /// every context records into FlightRecorder::Global() unless pointed at a
  /// private recorder (tests) or detached with nullptr. Recording is
  /// span-grained and failure-grained — never per tuple — so the cost is a
  /// ring-buffer write per stage, not per row.
  void set_recorder(FlightRecorder* recorder) { recorder_ = recorder; }
  FlightRecorder* recorder() const { return recorder_; }

  /// Span under which this context's first spans nest when its thread has
  /// no open span of its own: Fork() captures the forking thread's current
  /// span here, which is what keeps a shard's spans parented under the
  /// fan-out's span even though they start on a fresh pool thread.
  std::uint64_t trace_parent() const { return trace_parent_; }
  void set_trace_parent(std::uint64_t span_id) { trace_parent_ = span_id; }

  /// Distributed trace id this context's spans belong to (0 = untraced).
  /// On the request thread the tracer's installed TraceContext already
  /// carries the family, so this is the *fallback* for spans started on
  /// pool threads: Fork() captures the forking thread's current trace id
  /// here, and StartSpan passes it as the trace hint — the cross-thread
  /// analogue of trace_parent(). Servers set it from the request frame's
  /// trace context (see ExecOptions::trace_id).
  std::uint64_t trace_id() const { return trace_id_; }
  void set_trace_id(std::uint64_t trace_id) { trace_id_ = trace_id; }

  // -- Introspection ---------------------------------------------------------

  const Limits& limits() const { return limits_; }
  bool has_step_budget() const { return limits_.max_steps != 0; }
  bool has_deadline() const { return deadline_ != Clock::time_point::max(); }
  /// True when any limit can trip this context (ignores fault injection).
  bool limited() const {
    return has_step_budget() || has_deadline() || limits_.max_rows != 0 ||
           limits_.max_memory_bytes != 0;
  }
  /// Counters. After Fork() these are family-global (the shared atomics),
  /// so a parent observes the combined work of all its children.
  std::uint64_t steps() const {
    return shared_ != nullptr ? shared_->steps.load(std::memory_order_relaxed)
                              : steps_;
  }
  std::uint64_t rows() const {
    return shared_ != nullptr ? shared_->rows.load(std::memory_order_relaxed)
                              : rows_;
  }
  std::uint64_t memory_in_use() const {
    return shared_ != nullptr
               ? shared_->memory_in_use.load(std::memory_order_relaxed)
               : memory_in_use_;
  }
  std::uint64_t memory_high_water() const {
    return shared_ != nullptr
               ? shared_->memory_high_water.load(std::memory_order_relaxed)
               : memory_high_water_;
  }
  /// True once Fork() has been called (counters live in shared storage).
  bool forked() const { return shared_ != nullptr; }

 private:
  /// Budget state shared by a forked family: every charge lands here, so
  /// caps hold across all threads of a fan-out combined.
  struct SharedBudget {
    std::atomic<std::uint64_t> steps{0};
    std::atomic<std::uint64_t> rows{0};
    std::atomic<std::uint64_t> memory_in_use{0};
    std::atomic<std::uint64_t> memory_high_water{0};
    std::atomic<bool> cancelled{false};
  };

  struct ForkTag {};
  ExecContext(ForkTag, const ExecContext& parent)
      : limits_(parent.limits_),
        deadline_(parent.deadline_),
        external_cancel_(parent.external_cancel_),
        injector_(parent.injector_),
        tracer_(parent.tracer_),
        metrics_(parent.metrics_),
        recorder_(parent.recorder_),
        trace_parent_(parent.tracer_ != nullptr &&
                              parent.tracer_->CurrentSpanId() != 0
                          ? parent.tracer_->CurrentSpanId()
                          : parent.trace_parent_),
        trace_id_(parent.tracer_ != nullptr &&
                          parent.tracer_->CurrentTraceId() != 0
                      ? parent.tracer_->CurrentTraceId()
                      : parent.trace_id_),
        shared_(parent.shared_) {}
  /// The wall clock is read once per this many checkpoints: cheap enough to
  /// keep deadlines responsive, rare enough to keep checkpoints branch-only.
  static constexpr std::uint32_t kDeadlineCheckStride = 64;

  /// Leaves a breadcrumb for a non-OK checkpoint outcome in the flight
  /// recorder (failure paths only — the OK hot path never reaches here).
  Status RecordFailure(const char* probe_point, Status status) {
    if (recorder_ != nullptr) {
      recorder_->Record(FlightRecorder::EventKind::kStatus, probe_point,
                        static_cast<std::uint64_t>(status.code()), 0,
                        status.message());
    }
    return status;
  }

  Limits limits_;
  Clock::time_point deadline_ = Clock::time_point::max();
  std::uint64_t steps_ = 0;
  std::uint64_t rows_ = 0;
  std::uint64_t memory_in_use_ = 0;
  std::uint64_t memory_high_water_ = 0;
  std::uint32_t deadline_countdown_ = 0;
  std::atomic<bool> cancelled_{false};
  const std::atomic<bool>* external_cancel_ = nullptr;
  FaultInjector* injector_ = nullptr;
  Tracer* tracer_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
  FlightRecorder* recorder_ = &FlightRecorder::Global();
  std::uint64_t trace_parent_ = 0;
  std::uint64_t trace_id_ = 0;
  std::shared_ptr<SharedBudget> shared_;
};

/// Opens a span on the context's tracer (inert when none is attached). The
/// span nests under the thread's innermost open span, falling back to the
/// context's trace_parent() — see ExecContext::Fork(). Every span start also
/// drops a breadcrumb into the context's flight recorder, so a post-mortem
/// dump shows which stages ran last even when no tracer was attached.
inline TraceSpan StartSpan(ExecContext& ctx, const char* name) {
  if (ctx.recorder() != nullptr) {
    ctx.recorder()->Record(FlightRecorder::EventKind::kSpan, name,
                           ctx.trace_parent());
  }
  return TraceSpan(ctx.tracer(), name, ctx.trace_parent(), ctx.trace_id());
}

}  // namespace setrec

#endif  // SETREC_CORE_EXEC_CONTEXT_H_
