#include "core/schema.h"

#include <utility>

namespace setrec {

Result<ClassId> Schema::AddClass(std::string name) {
  if (name.empty()) {
    return Status::InvalidArgument("class name must be non-empty");
  }
  if (class_index_.contains(name)) {
    return Status::AlreadyExists("duplicate class name: " + name);
  }
  if (property_index_.contains(name)) {
    return Status::AlreadyExists(
        "class name collides with a property name: " + name);
  }
  ClassId id = static_cast<ClassId>(classes_.size());
  class_index_.emplace(name, id);
  classes_.push_back(std::move(name));
  return id;
}

Result<PropertyId> Schema::AddProperty(std::string name, ClassId source,
                                       ClassId target) {
  if (name.empty()) {
    return Status::InvalidArgument("property name must be non-empty");
  }
  if (!HasClass(source) || !HasClass(target)) {
    return Status::InvalidArgument("property " + name +
                                   " references an unknown class");
  }
  if (property_index_.contains(name)) {
    return Status::AlreadyExists("duplicate property name: " + name);
  }
  if (class_index_.contains(name)) {
    return Status::AlreadyExists(
        "property name collides with a class name: " + name);
  }
  PropertyId id = static_cast<PropertyId>(properties_.size());
  property_index_.emplace(name, id);
  properties_.push_back(PropertyDef{std::move(name), source, target});
  return id;
}

Result<ClassId> Schema::FindClass(std::string_view name) const {
  auto it = class_index_.find(std::string(name));
  if (it == class_index_.end()) {
    return Status::NotFound("no class named " + std::string(name));
  }
  return it->second;
}

Result<PropertyId> Schema::FindProperty(std::string_view name) const {
  auto it = property_index_.find(std::string(name));
  if (it == property_index_.end()) {
    return Status::NotFound("no property named " + std::string(name));
  }
  return it->second;
}

std::vector<PropertyId> Schema::IncidentProperties(ClassId c) const {
  std::vector<PropertyId> out;
  for (PropertyId p = 0; p < properties_.size(); ++p) {
    if (properties_[p].source == c || properties_[p].target == c) {
      out.push_back(p);
    }
  }
  return out;
}

std::vector<SchemaItem> Schema::AllItems() const {
  std::vector<SchemaItem> items;
  items.reserve(classes_.size() + properties_.size());
  for (ClassId c = 0; c < classes_.size(); ++c) {
    items.push_back(SchemaItem::Class(c));
  }
  for (PropertyId p = 0; p < properties_.size(); ++p) {
    items.push_back(SchemaItem::Property(p));
  }
  return items;
}

}  // namespace setrec
