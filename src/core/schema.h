#ifndef SETREC_CORE_SCHEMA_H_
#define SETREC_CORE_SCHEMA_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/ids.h"
#include "core/status.h"

namespace setrec {

/// An object-base schema (Definition 2.1): a finite, edge-labeled, directed
/// graph whose nodes are class names and whose edges (B, e, C) declare a
/// property e of class B with target type C. Different edges must carry
/// different labels, so a property name identifies its edge uniquely.
///
/// Schemas are built incrementally with AddClass/AddProperty and are
/// otherwise immutable; Instance and the analysis layers hold `const Schema*`
/// pointers, so a schema must outlive everything built on it.
class Schema {
 public:
  /// Declaration of one schema edge (B, e, C).
  struct PropertyDef {
    std::string name;
    ClassId source;
    ClassId target;
  };

  Schema() = default;

  /// Adds a class name; fails with AlreadyExists on duplicates.
  Result<ClassId> AddClass(std::string name);

  /// Adds a property edge (source, name, target). Both endpoint classes must
  /// exist; the label must be globally fresh (Definition 2.1 requires
  /// distinct labels on distinct edges).
  Result<PropertyId> AddProperty(std::string name, ClassId source,
                                 ClassId target);

  std::size_t num_classes() const { return classes_.size(); }
  std::size_t num_properties() const { return properties_.size(); }

  bool HasClass(ClassId id) const { return id < classes_.size(); }
  bool HasProperty(PropertyId id) const { return id < properties_.size(); }

  const std::string& class_name(ClassId id) const { return classes_[id]; }
  const PropertyDef& property(PropertyId id) const { return properties_[id]; }

  Result<ClassId> FindClass(std::string_view name) const;
  Result<PropertyId> FindProperty(std::string_view name) const;

  /// All properties whose source or target is `c`, in id order. Used by the
  /// coloring soundness criteria, which quantify over incident schema edges.
  std::vector<PropertyId> IncidentProperties(ClassId c) const;

  /// All schema items (classes then properties), the domain of a coloring.
  std::vector<SchemaItem> AllItems() const;

 private:
  std::vector<std::string> classes_;
  std::vector<PropertyDef> properties_;
  std::unordered_map<std::string, ClassId> class_index_;
  std::unordered_map<std::string, PropertyId> property_index_;
};

}  // namespace setrec

#endif  // SETREC_CORE_SCHEMA_H_
