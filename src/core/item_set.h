#ifndef SETREC_CORE_ITEM_SET_H_
#define SETREC_CORE_ITEM_SET_H_

#include <set>

#include "core/ids.h"
#include "core/schema.h"

namespace setrec {

/// A set of schema items (classes and properties). Used as the type
/// parameter X of "uses only information of type X" (Definitions 4.5, 4.7,
/// 4.16) and as the carrier of restriction I|X.
class SchemaItemSet {
 public:
  SchemaItemSet() = default;

  void InsertClass(ClassId c) { classes_.insert(c); }
  void InsertProperty(PropertyId p) { properties_.insert(p); }
  void Insert(SchemaItem item) {
    if (item.is_class()) {
      classes_.insert(item.id());
    } else {
      properties_.insert(item.id());
    }
  }

  bool ContainsClass(ClassId c) const { return classes_.contains(c); }
  bool ContainsProperty(PropertyId p) const {
    return properties_.contains(p);
  }
  bool Contains(SchemaItem item) const {
    return item.is_class() ? ContainsClass(item.id())
                           : ContainsProperty(item.id());
  }

  const std::set<ClassId>& classes() const { return classes_; }
  const std::set<PropertyId>& properties() const { return properties_; }

  bool empty() const { return classes_.empty() && properties_.empty(); }

  /// Adds, for every property in the set, its incident classes. Definition
  /// 4.7 requires the "use" set X to be edge-closed in this sense (if an edge
  /// is in X, so are its incident nodes) so that I|X is always an instance.
  void CloseUnderIncidentClasses(const Schema& schema) {
    for (PropertyId p : properties_) {
      classes_.insert(schema.property(p).source);
      classes_.insert(schema.property(p).target);
    }
  }

  /// True if every property's incident classes are also members.
  bool IsEdgeClosed(const Schema& schema) const {
    for (PropertyId p : properties_) {
      if (!classes_.contains(schema.property(p).source) ||
          !classes_.contains(schema.property(p).target)) {
        return false;
      }
    }
    return true;
  }

  /// The full item set of `schema`.
  static SchemaItemSet All(const Schema& schema) {
    SchemaItemSet out;
    for (SchemaItem item : schema.AllItems()) out.Insert(item);
    return out;
  }

  friend bool operator==(const SchemaItemSet&, const SchemaItemSet&) = default;

 private:
  std::set<ClassId> classes_;
  std::set<PropertyId> properties_;
};

}  // namespace setrec

#endif  // SETREC_CORE_ITEM_SET_H_
