#include "core/receiver.h"

#include <cassert>
#include <map>
#include <utility>

namespace setrec {

MethodSignature::MethodSignature(std::vector<ClassId> classes)
    : classes_(std::move(classes)) {
  assert(!classes_.empty() && "a signature is a non-empty tuple (Def 2.4)");
}

Result<Receiver> Receiver::Make(const MethodSignature& signature,
                                std::vector<ObjectId> objects,
                                const Instance& instance) {
  if (objects.size() != signature.size()) {
    return Status::InvalidArgument("receiver arity does not match signature");
  }
  for (std::size_t i = 0; i < objects.size(); ++i) {
    if (objects[i].class_id() != signature.class_at(i)) {
      return Status::InvalidArgument(
          "receiver component has wrong class at position " +
          std::to_string(i));
    }
    if (!instance.HasObject(objects[i])) {
      return Status::FailedPrecondition(
          "receiver component not present in instance at position " +
          std::to_string(i));
    }
  }
  return Receiver(std::move(objects));
}

Receiver Receiver::Unchecked(std::vector<ObjectId> objects) {
  assert(!objects.empty());
  return Receiver(std::move(objects));
}

bool Receiver::IsValidOver(const MethodSignature& signature,
                           const Instance& instance) const {
  if (objects_.size() != signature.size()) return false;
  for (std::size_t i = 0; i < objects_.size(); ++i) {
    if (objects_[i].class_id() != signature.class_at(i)) return false;
    if (!instance.HasObject(objects_[i])) return false;
  }
  return true;
}

bool IsKeySet(std::span<const Receiver> receivers) {
  std::map<ObjectId, const Receiver*> by_receiving;
  for (const Receiver& r : receivers) {
    auto [it, inserted] = by_receiving.emplace(r.receiving_object(), &r);
    if (!inserted && !(*it->second == r)) return false;
  }
  return true;
}

}  // namespace setrec
