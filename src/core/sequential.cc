#include "core/sequential.h"

#include <algorithm>
#include <numeric>

namespace setrec {

namespace {

/// Runs one enumeration; nullopt encodes "undefined" (footnote 2). Errors
/// from the governance layer are not "undefined" — they mean the outcome was
/// not computed — and propagate instead.
Result<std::optional<Instance>> RunEnumeration(
    const UpdateMethod& method, const Instance& instance,
    std::span<const Receiver> sequence, ExecContext& ctx) {
  Result<Instance> r = ApplySequence(method, instance, sequence, ctx);
  if (!r.ok()) {
    if (IsGovernanceError(r.status())) return r.status();
    return std::optional<Instance>();
  }
  return std::optional<Instance>(std::move(r).value());
}

bool SameOutcome(const std::optional<Instance>& a,
                 const std::optional<Instance>& b) {
  if (a.has_value() != b.has_value()) return false;
  return !a.has_value() || *a == *b;
}

}  // namespace

Result<Instance> ApplySequence(const UpdateMethod& method,
                               const Instance& instance,
                               std::span<const Receiver> sequence,
                               ExecContext& ctx) {
  TraceSpan span = StartSpan(ctx, "sequential/apply");
  MetricsRegistry* metrics = ctx.metrics();
  Instance current = instance;
  for (const Receiver& t : sequence) {
    SETREC_RETURN_IF_ERROR(ctx.CheckPoint("sequential/receiver"));
    if (metrics != nullptr) metrics->engine.sequential_receivers.Add(1);
    if (!t.IsValidOver(method.signature(), current)) {
      return Status::FailedPrecondition(
          "sequence is undefined: receiver not valid over intermediate "
          "instance");
    }
    SETREC_ASSIGN_OR_RETURN(current, method.Apply(current, t));
  }
  return current;
}

std::vector<Receiver> CanonicalReceiverSet(
    std::span<const Receiver> receivers) {
  std::vector<Receiver> out(receivers.begin(), receivers.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Result<OrderIndependenceOutcome> OrderIndependentOn(
    const UpdateMethod& method, const Instance& instance,
    std::span<const Receiver> receivers, ExecContext& ctx,
    std::size_t max_set_size) {
  std::vector<Receiver> set = CanonicalReceiverSet(receivers);
  if (set.size() > max_set_size && !ctx.has_step_budget() &&
      !ctx.has_deadline()) {
    return Status::ResourceExhausted(
        "receiver set of size " + std::to_string(set.size()) +
        " exceeds the exhaustive permutation guard (" +
        std::to_string(max_set_size) +
        "); pass an ExecContext with a step budget or deadline to attempt "
        "it anyway");
  }

  TraceSpan span = StartSpan(ctx, "sequential/permutation-test");
  OrderIndependenceOutcome outcome;
  std::vector<std::size_t> perm(set.size());
  std::iota(perm.begin(), perm.end(), 0);

  std::optional<Instance> first;
  std::vector<Receiver> first_order;
  bool have_first = false;
  do {
    SETREC_RETURN_IF_ERROR(ctx.CheckPoint("sequential/permutation"));
    std::vector<Receiver> order;
    order.reserve(set.size());
    for (std::size_t i : perm) order.push_back(set[i]);
    SETREC_ASSIGN_OR_RETURN(std::optional<Instance> result,
                            RunEnumeration(method, instance, order, ctx));
    if (!have_first) {
      first = result;
      first_order = order;
      have_first = true;
    } else if (!SameOutcome(first, result)) {
      outcome.order_independent = false;
      outcome.witness_a = first_order;
      outcome.witness_b = order;
      outcome.result_a = first;
      outcome.result_b = result;
      return outcome;
    }
  } while (std::next_permutation(perm.begin(), perm.end()));

  outcome.order_independent = true;
  if (first.has_value()) outcome.result = std::move(first);
  return outcome;
}

Result<OrderIndependenceOutcome> PairwiseOrderIndependentOn(
    const UpdateMethod& method, const Instance& instance,
    std::span<const Receiver> receivers, ExecContext& ctx) {
  std::vector<Receiver> set = CanonicalReceiverSet(receivers);
  OrderIndependenceOutcome outcome;
  for (std::size_t i = 0; i < set.size(); ++i) {
    for (std::size_t j = i + 1; j < set.size(); ++j) {
      SETREC_RETURN_IF_ERROR(ctx.CheckPoint("sequential/pair"));
      std::vector<Receiver> ab = {set[i], set[j]};
      std::vector<Receiver> ba = {set[j], set[i]};
      SETREC_ASSIGN_OR_RETURN(std::optional<Instance> rab,
                              RunEnumeration(method, instance, ab, ctx));
      SETREC_ASSIGN_OR_RETURN(std::optional<Instance> rba,
                              RunEnumeration(method, instance, ba, ctx));
      if (!SameOutcome(rab, rba)) {
        outcome.order_independent = false;
        outcome.witness_a = std::move(ab);
        outcome.witness_b = std::move(ba);
        outcome.result_a = std::move(rab);
        outcome.result_b = std::move(rba);
        return outcome;
      }
    }
  }
  outcome.order_independent = true;
  return outcome;
}

Result<Instance> SequentialApply(const UpdateMethod& method,
                                 const Instance& instance,
                                 std::span<const Receiver> receivers,
                                 bool verify_order_independence,
                                 ExecContext& ctx) {
  std::vector<Receiver> set = CanonicalReceiverSet(receivers);
  if (verify_order_independence) {
    SETREC_ASSIGN_OR_RETURN(OrderIndependenceOutcome outcome,
                            OrderIndependentOn(method, instance, set, ctx));
    if (!outcome.order_independent) {
      return Status::FailedPrecondition(
          "method is not order independent on this receiver set; "
          "M_seq is ill-defined");
    }
  }
  return ApplySequence(method, instance, set, ctx);
}

Result<Instance> SequentialApply(const UpdateMethod& method,
                                 const Instance& instance,
                                 std::span<const Receiver> receivers,
                                 const ExecOptions& options,
                                 bool verify_order_independence) {
  ExecScope scope(options);
  Result<Instance> result = SequentialApply(method, instance, receivers,
                                            verify_order_independence,
                                            scope.ctx());
  if (result.ok() && options.view_cache != nullptr) {
    // The apply itself succeeded; the cache is advisory and fails closed on
    // its own when it cannot absorb a delta, so publication errors do not
    // fail the call.
    (void)options.view_cache->ApplyDelta(DiffInstances(instance, *result));
  }
  return result;
}

}  // namespace setrec
