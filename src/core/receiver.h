#ifndef SETREC_CORE_RECEIVER_H_
#define SETREC_CORE_RECEIVER_H_

#include <compare>
#include <cstddef>
#include <span>
#include <vector>

#include "core/ids.h"
#include "core/instance.h"
#include "core/status.h"

namespace setrec {

/// A method signature σ = [C0, ..., Ck] over a schema (Definition 2.4): a
/// non-empty tuple of class names. C0 is the receiving class; C1..Ck are the
/// argument classes.
class MethodSignature {
 public:
  /// `classes` must be non-empty; its first element is the receiving class.
  explicit MethodSignature(std::vector<ClassId> classes);

  ClassId receiving_class() const { return classes_[0]; }
  /// Number of argument positions (k), excluding the receiver.
  std::size_t num_args() const { return classes_.size() - 1; }
  /// Total tuple length (k + 1).
  std::size_t size() const { return classes_.size(); }
  ClassId class_at(std::size_t i) const { return classes_[i]; }
  ClassId arg_class(std::size_t i) const { return classes_[i + 1]; }

  friend bool operator==(const MethodSignature&, const MethodSignature&) =
      default;

 private:
  std::vector<ClassId> classes_;
};

/// A receiver [o0, ..., ok] of some type σ (Definition 2.5): a tuple of
/// objects whose classes match the signature positionally. o0 is the
/// receiving object; o1..ok are the arguments.
class Receiver {
 public:
  /// Validates classes against `signature` and presence in `instance`
  /// (receivers are defined *over* an instance).
  static Result<Receiver> Make(const MethodSignature& signature,
                               std::vector<ObjectId> objects,
                               const Instance& instance);

  /// Constructs without presence checks (classes are asserted). Useful when
  /// the receiver's validity over the evolving instance is checked later, as
  /// sequential application must do.
  static Receiver Unchecked(std::vector<ObjectId> objects);

  ObjectId receiving_object() const { return objects_[0]; }
  std::size_t num_args() const { return objects_.size() - 1; }
  std::size_t size() const { return objects_.size(); }
  ObjectId object_at(std::size_t i) const { return objects_[i]; }
  ObjectId arg(std::size_t i) const { return objects_[i + 1]; }

  /// True when every component object is present in `instance` with the
  /// right class per `signature`.
  bool IsValidOver(const MethodSignature& signature,
                   const Instance& instance) const;

  friend auto operator<=>(const Receiver&, const Receiver&) = default;

 private:
  explicit Receiver(std::vector<ObjectId> objects)
      : objects_(std::move(objects)) {}

  std::vector<ObjectId> objects_;
};

/// True when, viewing T as a relation, the first column (the receiving
/// objects) is a key for T (Section 3, key-order independence): no receiving
/// object occurs twice with different arguments.
bool IsKeySet(std::span<const Receiver> receivers);

}  // namespace setrec

#endif  // SETREC_CORE_RECEIVER_H_
