// Example 6.4: sequential application of an algebraic update method can
// compute transitive closure, while parallel application — confined to the
// power of the relational algebra — merely copies each e-edge to a tc-edge.
//
// Builds a directed cycle-with-chords graph, runs the tc_step method under
// both strategies, and reports the number of derived tc-edges per round.

#include <cstdio>
#include <cstdlib>

#include "algebraic/method_library.h"
#include "algebraic/parallel.h"
#include "core/instance_generator.h"
#include "core/sequential.h"

namespace {

using namespace setrec;  // NOLINT: example brevity

template <typename T>
T Unwrap(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace

int main() {
  TcSchema tc = Unwrap(MakeTcSchema(), "schema");
  auto method = Unwrap(MakeTransitiveClosureMethod(tc), "method");
  std::printf("method: %s\n\n", method->ToString().c_str());

  constexpr std::uint32_t kN = 8;
  Instance graph(&tc.schema);
  for (std::uint32_t i = 0; i < kN; ++i) {
    (void)graph.AddObject(ObjectId(tc.c, i));
  }
  // A path 0→1→...→7 plus a chord 2→6.
  for (std::uint32_t i = 0; i + 1 < kN; ++i) {
    (void)graph.AddEdge(ObjectId(tc.c, i), tc.e, ObjectId(tc.c, i + 1));
  }
  (void)graph.AddEdge(ObjectId(tc.c, 2), tc.e, ObjectId(tc.c, 6));
  std::printf("input: %u vertices, %zu e-edges (path plus one chord)\n", kN,
              graph.edges(tc.e).size());

  std::vector<Receiver> all =
      InstanceGenerator::AllReceivers(graph, MethodSignature({tc.c, tc.c}));

  // Parallel: one shot, algebra-bounded.
  Instance parallel = Unwrap(ParallelApply(*method, graph, all), "parallel");
  std::printf("parallel application:   %zu tc-edges (e duplicated, no "
              "closure)\n",
              parallel.edges(tc.tc).size());

  // Sequential: iterate passes to the fixpoint.
  Instance current = graph;
  for (int round = 1; round <= static_cast<int>(kN); ++round) {
    Instance next = Unwrap(ApplySequence(*method, current, all), "pass");
    std::printf("sequential pass %d:      %zu tc-edges\n", round,
                next.edges(tc.tc).size());
    if (next == current) break;
    current = std::move(next);
  }

  // Ground truth: reachability closure of the input graph.
  std::size_t expected = 0;
  for (std::uint32_t s = 0; s < kN; ++s) {
    std::vector<bool> seen(kN, false);
    std::vector<std::uint32_t> stack = {s};
    while (!stack.empty()) {
      std::uint32_t v = stack.back();
      stack.pop_back();
      for (ObjectId w : current.Targets(ObjectId(tc.c, v), tc.e)) {
        if (!seen[w.index()]) {
          seen[w.index()] = true;
          stack.push_back(w.index());
        }
      }
    }
    for (std::uint32_t v = 0; v < kN; ++v) {
      if (seen[v]) ++expected;
    }
  }
  std::printf("reachability ground truth: %zu pairs; sequential fixpoint "
              "matches: %s\n",
              expected,
              current.edges(tc.tc).size() == expected ? "yes" : "no");
  std::printf(
      "\nConclusion (Section 6): sequential application exceeds the\n"
      "relational algebra, so no parallel method M' can simulate every\n"
      "order-independent sequential method.\n");
  return 0;
}
