// Section 7 end to end: the Employee / Fire / NewSal scenarios.
//
//  1. delete-where-salary-in-Fire: cursor and set-oriented forms agree
//     (simple deflationary coloring ⇒ order independent, Theorem 4.23);
//  2. delete-where-manager-fired: the cursor form is order dependent and
//     wrong; the two-phase set-oriented form is correct;
//  3. update (B) (salary from NewSal): key-order independent cursor program;
//  4. update (C) (salary from the manager's NewSal row): order dependent;
//  5. the Theorem 6.5 code improvement: derive the set-oriented statement
//     equivalent to cursor program (B) automatically.

#include <cstdio>
#include <cstdlib>

#include "algebraic/order_independence.h"
#include "relational/builder.h"
#include "sql/engine.h"
#include "sql/improve.h"
#include "sql/table.h"

namespace {

using namespace setrec;  // NOLINT: example brevity

template <typename T>
T Unwrap(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

void PrintSalaries(const PayrollSchema& ps, const Instance& db,
                   const char* title) {
  std::printf("%s\n", title);
  for (auto [id, salary] : Unwrap(ReadSalaries(ps, db), "read")) {
    std::printf("  employee %u: salary %u\n", id, salary);
  }
}

}  // namespace

int main() {
  PayrollSchema ps = Unwrap(MakePayrollSchema(), "schema");

  // --- Scenario 1: simple delete --------------------------------------------
  std::printf("== delete from Employee where Salary in table Fire ==\n");
  {
    std::vector<EmployeeRow> employees = {
        {1, 100, {}}, {2, 200, {}}, {3, 100, {}}, {4, 300, {}}};
    Instance db = Unwrap(
        BuildPayrollInstance(ps, employees, {{100, 300}}, {}), "build");
    auto report = Unwrap(TestCursorDeleteOrders(db, ps.emp, SalaryInFire(ps)),
                         "orders");
    std::printf("cursor order independent: %s (all 4! visit orders agree)\n",
                report.order_independent ? "yes" : "no");
    Instance set_based =
        Unwrap(SetOrientedDelete(db, ps.emp, SalaryInFire(ps)), "delete");
    std::printf("survivors: ");
    for (std::uint32_t id : EmployeeIds(ps, set_based)) {
      std::printf("%u ", id);
    }
    std::printf("(expected: 2)\n\n");
  }

  // --- Scenario 2: manager-based delete --------------------------------------
  std::printf("== delete employees whose manager's salary is in Fire ==\n");
  {
    std::vector<EmployeeRow> employees = {{1, 100, {}}, {2, 200, 1},
                                          {3, 300, 2}};
    Instance db = Unwrap(
        BuildPayrollInstance(ps, employees, {{100, 200}}, {}), "build");
    auto report = Unwrap(
        TestCursorDeleteOrders(db, ps.emp, ManagerSalaryInFire(ps)),
        "orders");
    std::printf(
        "cursor order independent: %s  (Employee is colored both d and u: "
        "Theorem 4.23 no longer applies)\n",
        report.order_independent ? "yes" : "no");
    Instance set_based = Unwrap(
        SetOrientedDelete(db, ps.emp, ManagerSalaryInFire(ps)), "delete");
    std::printf("set-oriented survivors: ");
    for (std::uint32_t id : EmployeeIds(ps, set_based)) {
      std::printf("%u ", id);
    }
    std::printf("(expected: 1)\n\n");
  }

  // --- Scenarios 3-5: updates -------------------------------------------------
  std::vector<EmployeeRow> employees = {{1, 100, 2}, {2, 200, 1},
                                        {3, 100, 1}};
  std::vector<NewSalRow> raises = {{100, 150}, {200, 250}, {150, 175},
                                   {250, 275}};
  Instance db = Unwrap(BuildPayrollInstance(ps, employees, {}, raises),
                       "build");
  PrintSalaries(ps, db, "== initial salaries ==");

  auto update_b = Unwrap(MakeSalaryFromNewSal(ps), "B'");
  auto update_c = Unwrap(MakeSalaryFromManagersNewSal(ps), "C'");
  std::printf(
      "\nupdate (B'): Prop 5.8 condition %s; decision procedure: key-order "
      "independent %s\n",
      SatisfiesUpdateIsolationCondition(*update_b) ? "holds" : "fails",
      Unwrap(DecideOrderIndependence(*update_b,
                                     OrderIndependenceKind::kKeyOrder),
             "decide")
          ? "yes"
          : "no");
  std::printf(
      "update (C'): Prop 5.8 condition %s; decision procedure: key-order "
      "independent %s\n\n",
      SatisfiesUpdateIsolationCondition(*update_c) ? "holds" : "fails",
      Unwrap(DecideOrderIndependence(*update_c,
                                     OrderIndependenceKind::kKeyOrder),
             "decide")
          ? "yes"
          : "no");

  // Cursor update (B) over the key set {[e, Salary(e)]}.
  std::vector<Receiver> receivers;
  for (auto [id, salary] : Unwrap(ReadSalaries(ps, db), "read")) {
    receivers.push_back(Receiver::Unchecked(
        {ObjectId(ps.emp, id), ObjectId(ps.val, salary)}));
  }
  Instance after_b = Unwrap(CursorUpdate(*update_b, db, receivers), "B");
  PrintSalaries(ps, after_b, "== after cursor update (B) ==");

  // The Theorem 6.5 improvement: emit the set-oriented statement.
  ExprPtr rec_source = ra::Rename(
      ra::Rename(ra::Rel("EmpSalary"), "Emp", "self"), "Salary", "arg1");
  ImprovedUpdate improved =
      Unwrap(ImproveCursorUpdate(*update_b, rec_source), "improve");
  std::printf(
      "\n== Theorem 6.5 code improvement ==\nreceiver-set query (the "
      "\"select EmpId, New from Employee, NewSal where Salary = Old\" "
      "equivalent):\n  %s\n",
      ExprToString(*improved.receiver_query).c_str());
  Instance via_improved =
      Unwrap(ApplyImprovedUpdate(improved, db), "apply improved");
  std::printf("improved form equals the cursor program: %s\n",
              via_improved == after_b ? "yes" : "no");

  // Update (C): the cursor form depends on the visit order.
  Receiver e1 = Receiver::Unchecked({ObjectId(ps.emp, 1)});
  Receiver e2 = Receiver::Unchecked({ObjectId(ps.emp, 2)});
  Receiver e3 = Receiver::Unchecked({ObjectId(ps.emp, 3)});
  Instance c_fwd =
      Unwrap(CursorUpdate(*update_c, db, std::vector<Receiver>{e1, e2, e3}),
             "C fwd");
  Instance c_rev =
      Unwrap(CursorUpdate(*update_c, db, std::vector<Receiver>{e3, e2, e1}),
             "C rev");
  PrintSalaries(ps, c_fwd, "\n== cursor update (C), order 1-2-3 ==");
  PrintSalaries(ps, c_rev, "== cursor update (C), order 3-2-1 ==");
  std::printf("orders agree: %s (the cursor form of (C) is wrong)\n",
              c_fwd == c_rev ? "yes" : "no");
  return 0;
}
