// Quickstart: the paper's running example end to end.
//
// Builds Ullman's drinkers schema (Example 2.3), reconstructs the instance I
// of Figure 2, applies add_bar and favorite_bar (Example 2.7, Figures 3-4),
// demonstrates order (in)dependence on a two-receiver set (Example 3.2,
// Figure 5), and runs the Theorem 5.12 decision procedure on both methods.

#include <cstdio>
#include <cstdlib>

#include "algebraic/method_library.h"
#include "algebraic/order_independence.h"
#include "core/printer.h"
#include "core/sequential.h"

namespace {

using namespace setrec;  // NOLINT: example brevity

template <typename T>
T Unwrap(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace

int main() {
  DrinkersSchema ds = Unwrap(MakeDrinkersSchema(), "schema");
  std::printf("== Schema (Example 2.3, abbreviated names) ==\n%s\n\n",
              SchemaToString(ds.schema).c_str());

  // Figure 2: Drinker_1 frequents Bar_1 and Bar_2; Bar_3 exists unfrequented.
  Instance figure2(&ds.schema);
  const ObjectId drinker1(ds.drinker, 1);
  const ObjectId bar1(ds.bar, 1), bar2(ds.bar, 2), bar3(ds.bar, 3);
  for (ObjectId o : {drinker1}) (void)figure2.AddObject(o);
  for (ObjectId o : {bar1, bar2, bar3}) (void)figure2.AddObject(o);
  (void)figure2.AddEdge(drinker1, ds.frequents, bar1);
  (void)figure2.AddEdge(drinker1, ds.frequents, bar2);
  std::printf("== Instance I (Figure 2) ==\n%s\n\n",
              InstanceToString(figure2).c_str());

  auto add_bar = Unwrap(MakeAddBar(ds), "add_bar");
  auto favorite_bar = Unwrap(MakeFavoriteBar(ds), "favorite_bar");

  const Receiver r3 = Receiver::Unchecked({drinker1, bar3});
  const Receiver r1 = Receiver::Unchecked({drinker1, bar1});

  Instance figure3 = Unwrap(add_bar->Apply(figure2, r3), "add_bar apply");
  std::printf("== add_bar(I, [Drinker_1, Bar_3]) (Figure 3) ==\n%s\n\n",
              InstanceToString(figure3).c_str());

  Instance figure4 =
      Unwrap(favorite_bar->Apply(figure2, r1), "favorite_bar apply");
  std::printf("== favorite_bar(I, [Drinker_1, Bar_1]) (Figure 4) ==\n%s\n\n",
              InstanceToString(figure4).c_str());

  // Example 3.2 / Figure 5: the two orders of applying favorite_bar to
  // {[D1,Ba1], [D1,Ba3]} disagree.
  std::vector<Receiver> receivers = {r1, Receiver::Unchecked({drinker1, bar3})};
  Instance fig5 = Unwrap(
      ApplySequence(*favorite_bar, figure2, receivers), "sequence r1,r3");
  std::printf(
      "== favorite_bar(I, [D1,Ba1], [D1,Ba3]) (Figure 5) ==\n%s\n\n",
      InstanceToString(fig5).c_str());

  OrderIndependenceOutcome fav_outcome = Unwrap(
      OrderIndependentOn(*favorite_bar, figure2, receivers), "OI test");
  OrderIndependenceOutcome add_outcome =
      Unwrap(OrderIndependentOn(*add_bar, figure2, receivers), "OI test");
  std::printf("favorite_bar order independent on (I, T): %s\n",
              fav_outcome.order_independent ? "yes" : "no");
  std::printf("add_bar      order independent on (I, T): %s\n\n",
              add_outcome.order_independent ? "yes" : "no");

  // Theorem 5.12: decide (key-)order independence statically.
  for (const AlgebraicUpdateMethod* m : {add_bar.get(), favorite_bar.get()}) {
    bool oi = Unwrap(
        DecideOrderIndependence(*m, OrderIndependenceKind::kAbsolute),
        "decision");
    bool koi = Unwrap(
        DecideOrderIndependence(*m, OrderIndependenceKind::kKeyOrder),
        "decision");
    std::printf("%-14s order independent: %-3s  key-order independent: %s\n",
                m->name().c_str(), oi ? "yes" : "no", koi ? "yes" : "no");
  }
  std::printf(
      "\n(Expected per Examples 3.2/5.9: add_bar yes/yes, favorite_bar "
      "no/yes.)\n");
  return 0;
}
