// Tour of the text front-end: define a schema, an instance and two update
// methods entirely as text, then run the paper's machinery on them —
// apply, test order (in)dependence dynamically, decide it statically, and
// print everything back out in parseable form.

#include <cstdio>
#include <cstdlib>

#include "algebraic/order_independence.h"
#include "core/printer.h"
#include "core/sequential.h"
#include "text/parser.h"
#include "text/printer.h"

namespace {

using namespace setrec;  // NOLINT: example brevity

template <typename T>
T Unwrap(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

constexpr const char kSchemaText[] = R"(
schema {
  // A tiny task tracker: workers claim tasks; tasks can block each other.
  class Worker;
  class Task;
  property claims : Worker -> Task;
  property blocks : Task -> Task;
}
)";

constexpr const char kInstanceText[] = R"(
instance {
  object Worker(0); object Worker(1);
  object Task(0); object Task(1); object Task(2);
  edge Worker(0) claims Task(0);
  edge Task(0) blocks Task(1);
  edge Task(1) blocks Task(2);
}
)";

// claim_all_unblocked: the receiving worker claims every task that blocks
// nothing further — reads `blocks`, writes `claims` (Prop 5.8 applies).
constexpr const char kClaimMethodText[] = R"(
method claim_ready [Worker] {
  claims := diff(rename[Task -> claims](Task),
                 rename[Task -> claims](project[Task](Taskblocks)));
}
)";

// steal: the receiving worker claims exactly the argument task — the
// favorite_bar shape: key-order independent only.
constexpr const char kStealMethodText[] = R"(
method steal [Worker, Task] {
  claims := rename[arg1 -> claims](arg1);
}
)";

}  // namespace

int main() {
  auto schema = Unwrap(ParseSchema(kSchemaText), "schema");
  std::printf("== parsed schema ==\n%s\n", SchemaToText(*schema).c_str());

  Instance instance =
      Unwrap(ParseInstance(kInstanceText, schema.get()), "instance");
  std::printf("== parsed instance ==\n%s\n",
              InstanceToString(instance).c_str());

  auto claim = Unwrap(ParseMethod(kClaimMethodText, schema.get()), "claim");
  auto steal = Unwrap(ParseMethod(kStealMethodText, schema.get()), "steal");

  // claim_ready uses difference, so it is non-positive and only the
  // refuter applies to it; steal is positive and fully decidable.
  std::printf("claim_ready positive: %s; steal positive: %s\n\n",
              claim->IsPositiveMethod() ? "yes" : "no",
              steal->IsPositiveMethod() ? "yes" : "no");

  const ClassId worker = Unwrap(schema->FindClass("Worker"), "class");
  const ClassId task = Unwrap(schema->FindClass("Task"), "class");
  const PropertyId claims = Unwrap(schema->FindProperty("claims"), "prop");

  // Apply claim_ready for worker 0: Task(2) blocks nothing, so it is the
  // only "ready" task.
  Receiver w0 = Receiver::Unchecked({ObjectId(worker, 0)});
  Instance after = Unwrap(claim->Apply(instance, w0), "apply");
  std::printf("after claim_ready(Worker(0)): claims =");
  for (ObjectId t : after.Targets(ObjectId(worker, 0), claims)) {
    std::printf(" Task(%u)", t.index());
  }
  std::printf("  (expected: Task(2))\n\n");

  // Static verdicts for steal.
  bool oi = Unwrap(
      DecideOrderIndependence(*steal, OrderIndependenceKind::kAbsolute),
      "decide");
  bool koi = Unwrap(
      DecideOrderIndependence(*steal, OrderIndependenceKind::kKeyOrder),
      "decide");
  std::printf("steal: order independent %s, key-order independent %s\n",
              oi ? "yes" : "no", koi ? "yes" : "no");

  // And the dynamic confirmation on two conflicting steals.
  std::vector<Receiver> conflict = {
      Receiver::Unchecked({ObjectId(worker, 0), ObjectId(task, 1)}),
      Receiver::Unchecked({ObjectId(worker, 0), ObjectId(task, 2)})};
  auto outcome =
      Unwrap(OrderIndependentOn(*steal, instance, conflict), "outcome");
  std::printf("two steals by the same worker agree across orders: %s\n\n",
              outcome.order_independent ? "yes" : "no");

  // Round trip: print the parsed methods back out in parseable form.
  std::printf("== methods, printed back ==\n%s\n%s",
              MethodToText(*claim).c_str(), MethodToText(*steal).c_str());
  return 0;
}
