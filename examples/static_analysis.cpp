// Static analysis of update methods: runs the whole analysis stack of the
// paper on every library method —
//   * Proposition 5.8's syntactic sufficient condition,
//   * the Theorem 5.12 decision procedure (absolute and key-order),
//   * the syntactic schema coloring with its soundness/simplicity verdicts
//     (Theorems 4.14/4.23),
//   * and, for order-dependent methods, a concrete witness found by the
//     randomized refuter.

#include <cstdio>
#include <cstdlib>

#include "algebraic/method_library.h"
#include "algebraic/order_independence.h"
#include "coloring/inference.h"
#include "coloring/soundness.h"
#include "core/printer.h"

namespace {

using namespace setrec;  // NOLINT: example brevity

template <typename T>
T Unwrap(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

void Analyze(const AlgebraicUpdateMethod& method, const Schema& schema) {
  std::printf("----------------------------------------------------------\n");
  std::printf("%s\n", method.ToString().c_str());
  std::printf("  positive: %s\n", method.IsPositiveMethod() ? "yes" : "no");
  std::printf("  Prop 5.8 syntactic condition (⇒ key-order independent): "
              "%s\n",
              SatisfiesUpdateIsolationCondition(method) ? "holds" : "fails");

  if (method.IsPositiveMethod()) {
    DecisionReport absolute = Unwrap(
        DecideOrderIndependenceDetailed(method,
                                        OrderIndependenceKind::kAbsolute),
        "decide");
    bool key = Unwrap(
        DecideOrderIndependence(method, OrderIndependenceKind::kKeyOrder),
        "decide");
    std::printf("  Thm 5.12 decision: order independent %-3s  key-order "
                "independent %s\n",
                absolute.order_independent ? "yes" : "no",
                key ? "yes" : "no");
    for (const auto& d : absolute.properties) {
      std::printf(
          "    reduction for '%s': %zu ∪-branches (pruned to %zu) vs %zu "
          "(pruned to %zu) — %s\n",
          schema.property(d.property).name.c_str(), d.raw_disjuncts_tt,
          d.pruned_disjuncts_tt, d.raw_disjuncts_ts, d.pruned_disjuncts_ts,
          d.equivalent ? "equivalent" : "NOT equivalent");
    }
  } else {
    std::printf("  Thm 5.12 decision: n/a (non-positive; undecidable in "
                "general, Cor 5.7)\n");
  }

  Coloring coloring = SyntacticColoring(method);
  std::printf("  syntactic coloring: %s\n", coloring.ToString().c_str());
  std::printf("    simple: %s  sound(inflationary): %s  "
              "sound(deflationary): %s\n",
              coloring.IsSimple() ? "yes" : "no",
              IsSoundColoring(coloring, UseAxiomatization::kInflationary)
                  ? "yes"
                  : "no",
              IsSoundColoring(coloring, UseAxiomatization::kDeflationary)
                  ? "yes"
                  : "no");
  if (coloring.IsSimple()) {
    std::printf("    ⇒ Theorems 4.14/4.23 certify order independence\n");
  }

  InstanceGenerator::Options options;
  options.min_objects_per_class = 2;
  options.max_objects_per_class = 3;
  options.edge_probability = 0.35;
  auto witness = Unwrap(
      SearchOrderDependenceWitness(method, schema, 5, 6, options), "search");
  if (witness.has_value()) {
    std::printf("  refuter: order dependence witnessed on\n%s\n",
                InstanceToString(witness->instance).c_str());
    std::printf("    receivers %s and %s\n",
                ReceiverToString(schema, witness->first).c_str(),
                ReceiverToString(schema, witness->second).c_str());
  } else {
    std::printf("  refuter: no order-dependence witness found\n");
  }
}

}  // namespace

int main() {
  DrinkersSchema ds = Unwrap(MakeDrinkersSchema(), "drinkers");
  std::printf("== drinkers schema ==\n%s\n", SchemaToString(ds.schema).c_str());
  auto add_bar = Unwrap(MakeAddBar(ds), "add_bar");
  auto favorite = Unwrap(MakeFavoriteBar(ds), "favorite_bar");
  auto delete_bar = Unwrap(MakeDeleteBar(ds), "delete_bar");
  auto likes_serves = Unwrap(MakeLikesServesBar(ds), "likes_serves");
  for (const AlgebraicUpdateMethod* m :
       {add_bar.get(), favorite.get(), delete_bar.get(),
        likes_serves.get()}) {
    Analyze(*m, ds.schema);
  }

  PairSchema ps = Unwrap(MakePairSchema(), "pair");
  std::printf("\n== one-class schema ==\n%s\n",
              SchemaToString(ps.schema).c_str());
  auto conditional = Unwrap(MakeConditionalDeleteMethod(ps), "cond");
  auto copy_extend = Unwrap(MakeCopyExtendMethod(ps), "copy");
  auto parity = Unwrap(MakeParityMethod(ps), "parity");
  Analyze(*copy_extend, ps.schema);
  Analyze(*parity, ps.schema);
  // conditional_delete's reduction is the heaviest: run it last and only
  // syntactically + empirically (its disjunct count explodes; the bench
  // bench_decision charts this growth).
  std::printf("----------------------------------------------------------\n");
  std::printf("%s\n", conditional->ToString().c_str());
  std::printf("  positive: yes; Prop 5.8 condition: %s\n",
              SatisfiesUpdateIsolationCondition(*conditional) ? "holds"
                                                              : "fails");
  InstanceGenerator::Options options;
  options.min_objects_per_class = 3;
  options.max_objects_per_class = 4;
  options.edge_probability = 0.15;
  auto witness =
      Unwrap(SearchOrderDependenceWitness(*conditional, ps.schema, 3, 20,
                                          options),
             "search");
  std::printf("  refuter: order dependence witness %s\n",
              witness.has_value() ? "found" : "not found");
  return 0;
}
