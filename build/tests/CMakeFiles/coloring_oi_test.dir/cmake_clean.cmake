file(REMOVE_RECURSE
  "CMakeFiles/coloring_oi_test.dir/coloring_oi_test.cc.o"
  "CMakeFiles/coloring_oi_test.dir/coloring_oi_test.cc.o.d"
  "coloring_oi_test"
  "coloring_oi_test.pdb"
  "coloring_oi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coloring_oi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
