# Empty dependencies file for coloring_oi_test.
# This may be replaced when dependencies are built.
