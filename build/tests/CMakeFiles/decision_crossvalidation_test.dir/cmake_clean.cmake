file(REMOVE_RECURSE
  "CMakeFiles/decision_crossvalidation_test.dir/decision_crossvalidation_test.cc.o"
  "CMakeFiles/decision_crossvalidation_test.dir/decision_crossvalidation_test.cc.o.d"
  "decision_crossvalidation_test"
  "decision_crossvalidation_test.pdb"
  "decision_crossvalidation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decision_crossvalidation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
