# Empty dependencies file for decision_crossvalidation_test.
# This may be replaced when dependencies are built.
