file(REMOVE_RECURSE
  "CMakeFiles/coloring_soundness_test.dir/coloring_soundness_test.cc.o"
  "CMakeFiles/coloring_soundness_test.dir/coloring_soundness_test.cc.o.d"
  "coloring_soundness_test"
  "coloring_soundness_test.pdb"
  "coloring_soundness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coloring_soundness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
