# Empty dependencies file for coloring_soundness_test.
# This may be replaced when dependencies are built.
