# Empty compiler generated dependencies file for order_independence_test.
# This may be replaced when dependencies are built.
