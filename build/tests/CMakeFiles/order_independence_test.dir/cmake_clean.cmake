file(REMOVE_RECURSE
  "CMakeFiles/order_independence_test.dir/order_independence_test.cc.o"
  "CMakeFiles/order_independence_test.dir/order_independence_test.cc.o.d"
  "order_independence_test"
  "order_independence_test.pdb"
  "order_independence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/order_independence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
