# Empty dependencies file for objrel_test.
# This may be replaced when dependencies are built.
