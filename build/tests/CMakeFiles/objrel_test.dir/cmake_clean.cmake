file(REMOVE_RECURSE
  "CMakeFiles/objrel_test.dir/objrel_test.cc.o"
  "CMakeFiles/objrel_test.dir/objrel_test.cc.o.d"
  "objrel_test"
  "objrel_test.pdb"
  "objrel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/objrel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
