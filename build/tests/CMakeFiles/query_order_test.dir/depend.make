# Empty dependencies file for query_order_test.
# This may be replaced when dependencies are built.
