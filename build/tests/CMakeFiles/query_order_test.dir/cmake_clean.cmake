file(REMOVE_RECURSE
  "CMakeFiles/query_order_test.dir/query_order_test.cc.o"
  "CMakeFiles/query_order_test.dir/query_order_test.cc.o.d"
  "query_order_test"
  "query_order_test.pdb"
  "query_order_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_order_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
