# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/algebraic_test[1]_include.cmake")
include("/root/repo/build/tests/order_independence_test[1]_include.cmake")
include("/root/repo/build/tests/relational_test[1]_include.cmake")
include("/root/repo/build/tests/objrel_test[1]_include.cmake")
include("/root/repo/build/tests/containment_test[1]_include.cmake")
include("/root/repo/build/tests/chase_test[1]_include.cmake")
include("/root/repo/build/tests/sequential_test[1]_include.cmake")
include("/root/repo/build/tests/query_order_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_test[1]_include.cmake")
include("/root/repo/build/tests/coloring_test[1]_include.cmake")
include("/root/repo/build/tests/coloring_soundness_test[1]_include.cmake")
include("/root/repo/build/tests/coloring_oi_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/combination_test[1]_include.cmake")
include("/root/repo/build/tests/gadget_test[1]_include.cmake")
include("/root/repo/build/tests/decision_crossvalidation_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
