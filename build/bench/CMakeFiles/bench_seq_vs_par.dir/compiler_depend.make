# Empty compiler generated dependencies file for bench_seq_vs_par.
# This may be replaced when dependencies are built.
