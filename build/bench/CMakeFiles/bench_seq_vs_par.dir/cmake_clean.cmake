file(REMOVE_RECURSE
  "CMakeFiles/bench_seq_vs_par.dir/bench_seq_vs_par.cc.o"
  "CMakeFiles/bench_seq_vs_par.dir/bench_seq_vs_par.cc.o.d"
  "bench_seq_vs_par"
  "bench_seq_vs_par.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_seq_vs_par.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
