file(REMOVE_RECURSE
  "CMakeFiles/bench_apply.dir/bench_apply.cc.o"
  "CMakeFiles/bench_apply.dir/bench_apply.cc.o.d"
  "bench_apply"
  "bench_apply.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_apply.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
