# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_employee_payroll "/root/repo/build/examples/employee_payroll")
set_tests_properties(example_employee_payroll PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_transitive_closure "/root/repo/build/examples/transitive_closure")
set_tests_properties(example_transitive_closure PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_static_analysis "/root/repo/build/examples/static_analysis")
set_tests_properties(example_static_analysis PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dsl_tour "/root/repo/build/examples/dsl_tour")
set_tests_properties(example_dsl_tour PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
