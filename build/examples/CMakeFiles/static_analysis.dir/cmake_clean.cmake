file(REMOVE_RECURSE
  "CMakeFiles/static_analysis.dir/static_analysis.cpp.o"
  "CMakeFiles/static_analysis.dir/static_analysis.cpp.o.d"
  "static_analysis"
  "static_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/static_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
