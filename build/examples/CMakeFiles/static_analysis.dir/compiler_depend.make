# Empty compiler generated dependencies file for static_analysis.
# This may be replaced when dependencies are built.
