file(REMOVE_RECURSE
  "CMakeFiles/employee_payroll.dir/employee_payroll.cpp.o"
  "CMakeFiles/employee_payroll.dir/employee_payroll.cpp.o.d"
  "employee_payroll"
  "employee_payroll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/employee_payroll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
