# Empty compiler generated dependencies file for employee_payroll.
# This may be replaced when dependencies are built.
