# Empty compiler generated dependencies file for setrec_conjunctive.
# This may be replaced when dependencies are built.
