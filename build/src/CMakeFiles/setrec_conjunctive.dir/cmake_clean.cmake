file(REMOVE_RECURSE
  "CMakeFiles/setrec_conjunctive.dir/conjunctive/chase.cc.o"
  "CMakeFiles/setrec_conjunctive.dir/conjunctive/chase.cc.o.d"
  "CMakeFiles/setrec_conjunctive.dir/conjunctive/conjunctive_query.cc.o"
  "CMakeFiles/setrec_conjunctive.dir/conjunctive/conjunctive_query.cc.o.d"
  "CMakeFiles/setrec_conjunctive.dir/conjunctive/containment.cc.o"
  "CMakeFiles/setrec_conjunctive.dir/conjunctive/containment.cc.o.d"
  "CMakeFiles/setrec_conjunctive.dir/conjunctive/homomorphism.cc.o"
  "CMakeFiles/setrec_conjunctive.dir/conjunctive/homomorphism.cc.o.d"
  "CMakeFiles/setrec_conjunctive.dir/conjunctive/representative.cc.o"
  "CMakeFiles/setrec_conjunctive.dir/conjunctive/representative.cc.o.d"
  "CMakeFiles/setrec_conjunctive.dir/conjunctive/translate.cc.o"
  "CMakeFiles/setrec_conjunctive.dir/conjunctive/translate.cc.o.d"
  "libsetrec_conjunctive.a"
  "libsetrec_conjunctive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/setrec_conjunctive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
