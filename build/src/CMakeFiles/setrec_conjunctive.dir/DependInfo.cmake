
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/conjunctive/chase.cc" "src/CMakeFiles/setrec_conjunctive.dir/conjunctive/chase.cc.o" "gcc" "src/CMakeFiles/setrec_conjunctive.dir/conjunctive/chase.cc.o.d"
  "/root/repo/src/conjunctive/conjunctive_query.cc" "src/CMakeFiles/setrec_conjunctive.dir/conjunctive/conjunctive_query.cc.o" "gcc" "src/CMakeFiles/setrec_conjunctive.dir/conjunctive/conjunctive_query.cc.o.d"
  "/root/repo/src/conjunctive/containment.cc" "src/CMakeFiles/setrec_conjunctive.dir/conjunctive/containment.cc.o" "gcc" "src/CMakeFiles/setrec_conjunctive.dir/conjunctive/containment.cc.o.d"
  "/root/repo/src/conjunctive/homomorphism.cc" "src/CMakeFiles/setrec_conjunctive.dir/conjunctive/homomorphism.cc.o" "gcc" "src/CMakeFiles/setrec_conjunctive.dir/conjunctive/homomorphism.cc.o.d"
  "/root/repo/src/conjunctive/representative.cc" "src/CMakeFiles/setrec_conjunctive.dir/conjunctive/representative.cc.o" "gcc" "src/CMakeFiles/setrec_conjunctive.dir/conjunctive/representative.cc.o.d"
  "/root/repo/src/conjunctive/translate.cc" "src/CMakeFiles/setrec_conjunctive.dir/conjunctive/translate.cc.o" "gcc" "src/CMakeFiles/setrec_conjunctive.dir/conjunctive/translate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/setrec_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/setrec_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
