file(REMOVE_RECURSE
  "libsetrec_conjunctive.a"
)
