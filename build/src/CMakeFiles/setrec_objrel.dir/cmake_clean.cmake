file(REMOVE_RECURSE
  "CMakeFiles/setrec_objrel.dir/objrel/encoding.cc.o"
  "CMakeFiles/setrec_objrel.dir/objrel/encoding.cc.o.d"
  "libsetrec_objrel.a"
  "libsetrec_objrel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/setrec_objrel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
