# Empty dependencies file for setrec_objrel.
# This may be replaced when dependencies are built.
