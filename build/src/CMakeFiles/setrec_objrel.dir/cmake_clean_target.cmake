file(REMOVE_RECURSE
  "libsetrec_objrel.a"
)
