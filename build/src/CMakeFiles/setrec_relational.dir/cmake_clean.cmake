file(REMOVE_RECURSE
  "CMakeFiles/setrec_relational.dir/relational/builder.cc.o"
  "CMakeFiles/setrec_relational.dir/relational/builder.cc.o.d"
  "CMakeFiles/setrec_relational.dir/relational/dependencies.cc.o"
  "CMakeFiles/setrec_relational.dir/relational/dependencies.cc.o.d"
  "CMakeFiles/setrec_relational.dir/relational/evaluator.cc.o"
  "CMakeFiles/setrec_relational.dir/relational/evaluator.cc.o.d"
  "CMakeFiles/setrec_relational.dir/relational/expression.cc.o"
  "CMakeFiles/setrec_relational.dir/relational/expression.cc.o.d"
  "CMakeFiles/setrec_relational.dir/relational/relation.cc.o"
  "CMakeFiles/setrec_relational.dir/relational/relation.cc.o.d"
  "CMakeFiles/setrec_relational.dir/relational/schema.cc.o"
  "CMakeFiles/setrec_relational.dir/relational/schema.cc.o.d"
  "CMakeFiles/setrec_relational.dir/relational/tuple.cc.o"
  "CMakeFiles/setrec_relational.dir/relational/tuple.cc.o.d"
  "libsetrec_relational.a"
  "libsetrec_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/setrec_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
