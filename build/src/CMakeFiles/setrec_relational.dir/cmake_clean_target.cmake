file(REMOVE_RECURSE
  "libsetrec_relational.a"
)
