# Empty compiler generated dependencies file for setrec_relational.
# This may be replaced when dependencies are built.
