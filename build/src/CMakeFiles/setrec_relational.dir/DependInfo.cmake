
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relational/builder.cc" "src/CMakeFiles/setrec_relational.dir/relational/builder.cc.o" "gcc" "src/CMakeFiles/setrec_relational.dir/relational/builder.cc.o.d"
  "/root/repo/src/relational/dependencies.cc" "src/CMakeFiles/setrec_relational.dir/relational/dependencies.cc.o" "gcc" "src/CMakeFiles/setrec_relational.dir/relational/dependencies.cc.o.d"
  "/root/repo/src/relational/evaluator.cc" "src/CMakeFiles/setrec_relational.dir/relational/evaluator.cc.o" "gcc" "src/CMakeFiles/setrec_relational.dir/relational/evaluator.cc.o.d"
  "/root/repo/src/relational/expression.cc" "src/CMakeFiles/setrec_relational.dir/relational/expression.cc.o" "gcc" "src/CMakeFiles/setrec_relational.dir/relational/expression.cc.o.d"
  "/root/repo/src/relational/relation.cc" "src/CMakeFiles/setrec_relational.dir/relational/relation.cc.o" "gcc" "src/CMakeFiles/setrec_relational.dir/relational/relation.cc.o.d"
  "/root/repo/src/relational/schema.cc" "src/CMakeFiles/setrec_relational.dir/relational/schema.cc.o" "gcc" "src/CMakeFiles/setrec_relational.dir/relational/schema.cc.o.d"
  "/root/repo/src/relational/tuple.cc" "src/CMakeFiles/setrec_relational.dir/relational/tuple.cc.o" "gcc" "src/CMakeFiles/setrec_relational.dir/relational/tuple.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/setrec_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
