# Empty compiler generated dependencies file for setrec_coloring.
# This may be replaced when dependencies are built.
