file(REMOVE_RECURSE
  "libsetrec_coloring.a"
)
