file(REMOVE_RECURSE
  "CMakeFiles/setrec_coloring.dir/coloring/coloring.cc.o"
  "CMakeFiles/setrec_coloring.dir/coloring/coloring.cc.o.d"
  "CMakeFiles/setrec_coloring.dir/coloring/counterexamples.cc.o"
  "CMakeFiles/setrec_coloring.dir/coloring/counterexamples.cc.o.d"
  "CMakeFiles/setrec_coloring.dir/coloring/inference.cc.o"
  "CMakeFiles/setrec_coloring.dir/coloring/inference.cc.o.d"
  "CMakeFiles/setrec_coloring.dir/coloring/soundness.cc.o"
  "CMakeFiles/setrec_coloring.dir/coloring/soundness.cc.o.d"
  "CMakeFiles/setrec_coloring.dir/coloring/witness.cc.o"
  "CMakeFiles/setrec_coloring.dir/coloring/witness.cc.o.d"
  "libsetrec_coloring.a"
  "libsetrec_coloring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/setrec_coloring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
