file(REMOVE_RECURSE
  "libsetrec_algebraic.a"
)
