file(REMOVE_RECURSE
  "CMakeFiles/setrec_algebraic.dir/algebraic/algebraic_method.cc.o"
  "CMakeFiles/setrec_algebraic.dir/algebraic/algebraic_method.cc.o.d"
  "CMakeFiles/setrec_algebraic.dir/algebraic/gadgets.cc.o"
  "CMakeFiles/setrec_algebraic.dir/algebraic/gadgets.cc.o.d"
  "CMakeFiles/setrec_algebraic.dir/algebraic/method_library.cc.o"
  "CMakeFiles/setrec_algebraic.dir/algebraic/method_library.cc.o.d"
  "CMakeFiles/setrec_algebraic.dir/algebraic/order_independence.cc.o"
  "CMakeFiles/setrec_algebraic.dir/algebraic/order_independence.cc.o.d"
  "CMakeFiles/setrec_algebraic.dir/algebraic/parallel.cc.o"
  "CMakeFiles/setrec_algebraic.dir/algebraic/parallel.cc.o.d"
  "CMakeFiles/setrec_algebraic.dir/algebraic/update_expression.cc.o"
  "CMakeFiles/setrec_algebraic.dir/algebraic/update_expression.cc.o.d"
  "libsetrec_algebraic.a"
  "libsetrec_algebraic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/setrec_algebraic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
