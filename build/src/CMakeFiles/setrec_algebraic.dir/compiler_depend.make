# Empty compiler generated dependencies file for setrec_algebraic.
# This may be replaced when dependencies are built.
