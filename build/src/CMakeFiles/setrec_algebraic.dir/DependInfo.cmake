
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algebraic/algebraic_method.cc" "src/CMakeFiles/setrec_algebraic.dir/algebraic/algebraic_method.cc.o" "gcc" "src/CMakeFiles/setrec_algebraic.dir/algebraic/algebraic_method.cc.o.d"
  "/root/repo/src/algebraic/gadgets.cc" "src/CMakeFiles/setrec_algebraic.dir/algebraic/gadgets.cc.o" "gcc" "src/CMakeFiles/setrec_algebraic.dir/algebraic/gadgets.cc.o.d"
  "/root/repo/src/algebraic/method_library.cc" "src/CMakeFiles/setrec_algebraic.dir/algebraic/method_library.cc.o" "gcc" "src/CMakeFiles/setrec_algebraic.dir/algebraic/method_library.cc.o.d"
  "/root/repo/src/algebraic/order_independence.cc" "src/CMakeFiles/setrec_algebraic.dir/algebraic/order_independence.cc.o" "gcc" "src/CMakeFiles/setrec_algebraic.dir/algebraic/order_independence.cc.o.d"
  "/root/repo/src/algebraic/parallel.cc" "src/CMakeFiles/setrec_algebraic.dir/algebraic/parallel.cc.o" "gcc" "src/CMakeFiles/setrec_algebraic.dir/algebraic/parallel.cc.o.d"
  "/root/repo/src/algebraic/update_expression.cc" "src/CMakeFiles/setrec_algebraic.dir/algebraic/update_expression.cc.o" "gcc" "src/CMakeFiles/setrec_algebraic.dir/algebraic/update_expression.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/setrec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/setrec_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/setrec_objrel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/setrec_conjunctive.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
