file(REMOVE_RECURSE
  "CMakeFiles/setrec_text.dir/text/parser.cc.o"
  "CMakeFiles/setrec_text.dir/text/parser.cc.o.d"
  "CMakeFiles/setrec_text.dir/text/printer.cc.o"
  "CMakeFiles/setrec_text.dir/text/printer.cc.o.d"
  "libsetrec_text.a"
  "libsetrec_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/setrec_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
