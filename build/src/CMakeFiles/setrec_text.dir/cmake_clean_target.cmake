file(REMOVE_RECURSE
  "libsetrec_text.a"
)
