# Empty dependencies file for setrec_text.
# This may be replaced when dependencies are built.
