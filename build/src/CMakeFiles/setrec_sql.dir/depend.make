# Empty dependencies file for setrec_sql.
# This may be replaced when dependencies are built.
