file(REMOVE_RECURSE
  "libsetrec_sql.a"
)
