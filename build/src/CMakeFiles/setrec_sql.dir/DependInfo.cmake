
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sql/engine.cc" "src/CMakeFiles/setrec_sql.dir/sql/engine.cc.o" "gcc" "src/CMakeFiles/setrec_sql.dir/sql/engine.cc.o.d"
  "/root/repo/src/sql/improve.cc" "src/CMakeFiles/setrec_sql.dir/sql/improve.cc.o" "gcc" "src/CMakeFiles/setrec_sql.dir/sql/improve.cc.o.d"
  "/root/repo/src/sql/table.cc" "src/CMakeFiles/setrec_sql.dir/sql/table.cc.o" "gcc" "src/CMakeFiles/setrec_sql.dir/sql/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/setrec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/setrec_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/setrec_algebraic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/setrec_objrel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/setrec_conjunctive.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
