file(REMOVE_RECURSE
  "CMakeFiles/setrec_sql.dir/sql/engine.cc.o"
  "CMakeFiles/setrec_sql.dir/sql/engine.cc.o.d"
  "CMakeFiles/setrec_sql.dir/sql/improve.cc.o"
  "CMakeFiles/setrec_sql.dir/sql/improve.cc.o.d"
  "CMakeFiles/setrec_sql.dir/sql/table.cc.o"
  "CMakeFiles/setrec_sql.dir/sql/table.cc.o.d"
  "libsetrec_sql.a"
  "libsetrec_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/setrec_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
