file(REMOVE_RECURSE
  "libsetrec_core.a"
)
