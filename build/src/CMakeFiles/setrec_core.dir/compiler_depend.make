# Empty compiler generated dependencies file for setrec_core.
# This may be replaced when dependencies are built.
