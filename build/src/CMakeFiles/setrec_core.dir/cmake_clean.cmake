file(REMOVE_RECURSE
  "CMakeFiles/setrec_core.dir/core/combination.cc.o"
  "CMakeFiles/setrec_core.dir/core/combination.cc.o.d"
  "CMakeFiles/setrec_core.dir/core/instance.cc.o"
  "CMakeFiles/setrec_core.dir/core/instance.cc.o.d"
  "CMakeFiles/setrec_core.dir/core/instance_generator.cc.o"
  "CMakeFiles/setrec_core.dir/core/instance_generator.cc.o.d"
  "CMakeFiles/setrec_core.dir/core/partial_instance.cc.o"
  "CMakeFiles/setrec_core.dir/core/partial_instance.cc.o.d"
  "CMakeFiles/setrec_core.dir/core/printer.cc.o"
  "CMakeFiles/setrec_core.dir/core/printer.cc.o.d"
  "CMakeFiles/setrec_core.dir/core/receiver.cc.o"
  "CMakeFiles/setrec_core.dir/core/receiver.cc.o.d"
  "CMakeFiles/setrec_core.dir/core/schema.cc.o"
  "CMakeFiles/setrec_core.dir/core/schema.cc.o.d"
  "CMakeFiles/setrec_core.dir/core/sequential.cc.o"
  "CMakeFiles/setrec_core.dir/core/sequential.cc.o.d"
  "CMakeFiles/setrec_core.dir/core/update_method.cc.o"
  "CMakeFiles/setrec_core.dir/core/update_method.cc.o.d"
  "libsetrec_core.a"
  "libsetrec_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/setrec_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
