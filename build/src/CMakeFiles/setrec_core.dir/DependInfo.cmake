
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/combination.cc" "src/CMakeFiles/setrec_core.dir/core/combination.cc.o" "gcc" "src/CMakeFiles/setrec_core.dir/core/combination.cc.o.d"
  "/root/repo/src/core/instance.cc" "src/CMakeFiles/setrec_core.dir/core/instance.cc.o" "gcc" "src/CMakeFiles/setrec_core.dir/core/instance.cc.o.d"
  "/root/repo/src/core/instance_generator.cc" "src/CMakeFiles/setrec_core.dir/core/instance_generator.cc.o" "gcc" "src/CMakeFiles/setrec_core.dir/core/instance_generator.cc.o.d"
  "/root/repo/src/core/partial_instance.cc" "src/CMakeFiles/setrec_core.dir/core/partial_instance.cc.o" "gcc" "src/CMakeFiles/setrec_core.dir/core/partial_instance.cc.o.d"
  "/root/repo/src/core/printer.cc" "src/CMakeFiles/setrec_core.dir/core/printer.cc.o" "gcc" "src/CMakeFiles/setrec_core.dir/core/printer.cc.o.d"
  "/root/repo/src/core/receiver.cc" "src/CMakeFiles/setrec_core.dir/core/receiver.cc.o" "gcc" "src/CMakeFiles/setrec_core.dir/core/receiver.cc.o.d"
  "/root/repo/src/core/schema.cc" "src/CMakeFiles/setrec_core.dir/core/schema.cc.o" "gcc" "src/CMakeFiles/setrec_core.dir/core/schema.cc.o.d"
  "/root/repo/src/core/sequential.cc" "src/CMakeFiles/setrec_core.dir/core/sequential.cc.o" "gcc" "src/CMakeFiles/setrec_core.dir/core/sequential.cc.o.d"
  "/root/repo/src/core/update_method.cc" "src/CMakeFiles/setrec_core.dir/core/update_method.cc.o" "gcc" "src/CMakeFiles/setrec_core.dir/core/update_method.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
