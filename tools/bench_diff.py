#!/usr/bin/env python3
"""Regression gate comparing two sets of BENCH_*.json artifacts.

For every BENCH_<name>.json present in BASELINE_DIR, the matching artifact
in CURRENT_DIR is compared benchmark by benchmark: a benchmark regresses
when its cpu_time (fallback: real_time) exceeds the baseline by more than
the relative threshold (default 0.25 = 25%). Speedups never fail the gate.
The engine's "metrics" counters are compared too, but report drift without
failing the gate — counter totals scale with google-benchmark's adaptive
iteration counts, so they are diagnostics, not pass/fail signals.

Exit status: 0 = no regression, 1 = regression (or self-test failure),
2 = usage/IO error. Artifacts present only on one side are reported and
skipped (a new benchmark is not a regression).

Usage:
  bench_diff.py BASELINE_DIR CURRENT_DIR [--threshold 0.25]
  bench_diff.py --self-test
"""

import argparse
import glob
import json
import os
import sys
import tempfile


def load(path):
    """Returns ({benchmark name: time}, {metric name: value})."""
    with open(path) as f:
        doc = json.load(f)
    times = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b.get("name")
        t = b.get("cpu_time", b.get("real_time"))
        if isinstance(name, str) and isinstance(t, (int, float)) and t > 0:
            times[name] = float(t)
    metrics = doc.get("metrics", {})
    if not isinstance(metrics, dict):
        metrics = {}
    return times, metrics


def compare_dirs(baseline_dir, current_dir, threshold):
    """Returns (regressions, notes); regressions non-empty fails the gate."""
    regressions, notes = [], []
    base_files = sorted(glob.glob(os.path.join(baseline_dir, "BENCH_*.json")))
    if not base_files:
        raise FileNotFoundError(f"no BENCH_*.json artifacts in {baseline_dir}")
    for base_path in base_files:
        fname = os.path.basename(base_path)
        cur_path = os.path.join(current_dir, fname)
        if not os.path.exists(cur_path):
            notes.append(f"{fname}: only in baseline, skipped")
            continue
        base_times, base_metrics = load(base_path)
        cur_times, cur_metrics = load(cur_path)
        for name, base_t in sorted(base_times.items()):
            cur_t = cur_times.get(name)
            if cur_t is None:
                notes.append(f"{fname}: {name}: only in baseline, skipped")
                continue
            ratio = cur_t / base_t
            if ratio > 1.0 + threshold:
                regressions.append(
                    f"{fname}: {name}: cpu_time {base_t:.1f} -> {cur_t:.1f} "
                    f"({(ratio - 1.0) * 100.0:+.1f}%, threshold "
                    f"{threshold * 100.0:.0f}%)")
        for name, base_v in sorted(base_metrics.items()):
            cur_v = cur_metrics.get(name)
            if (isinstance(base_v, (int, float)) and base_v > 0
                    and isinstance(cur_v, (int, float))):
                ratio = cur_v / base_v
                if abs(ratio - 1.0) > threshold:
                    notes.append(
                        f"{fname}: metric {name}: {base_v} -> {cur_v} "
                        f"({(ratio - 1.0) * 100.0:+.1f}%, informational)")
    return regressions, notes


def synthetic_artifact(cpu_times, rows):
    return {
        "context": {"host": "self-test"},
        "benchmarks": [
            {"name": name, "run_type": "iteration", "cpu_time": t,
             "real_time": t, "time_unit": "ns"}
            for name, t in cpu_times.items()
        ],
        "stages": {},
        "metrics": {"evaluator.rows": rows},
    }


def self_test(threshold):
    """Exercises the gate on synthetic artifacts: a >threshold cpu_time
    regression must fail, and an unchanged run must pass."""
    with tempfile.TemporaryDirectory() as tmp:
        base_dir = os.path.join(tmp, "baseline")
        good_dir = os.path.join(tmp, "good")
        bad_dir = os.path.join(tmp, "bad")
        for d in (base_dir, good_dir, bad_dir):
            os.makedirs(d)
        base = synthetic_artifact({"BM_Join/8": 100.0, "BM_Scan": 40.0}, 1000)
        good = synthetic_artifact({"BM_Join/8": 110.0, "BM_Scan": 40.0}, 1000)
        # 2x the threshold over baseline: unambiguously a regression.
        bad_time = 100.0 * (1.0 + 2.0 * threshold)
        bad = synthetic_artifact({"BM_Join/8": bad_time, "BM_Scan": 40.0},
                                 1000)
        for d, doc in ((base_dir, base), (good_dir, good), (bad_dir, bad)):
            with open(os.path.join(d, "BENCH_selftest.json"), "w") as f:
                json.dump(doc, f)
        ok_regressions, _ = compare_dirs(base_dir, good_dir, threshold)
        bad_regressions, _ = compare_dirs(base_dir, bad_dir, threshold)
        if ok_regressions:
            print("self-test FAILED: in-threshold run flagged as regression:",
                  ok_regressions, file=sys.stderr)
            return 1
        if not bad_regressions:
            print(f"self-test FAILED: {bad_time:.0f}ns vs 100ns baseline "
                  "not flagged as regression", file=sys.stderr)
            return 1
        print("self-test OK: synthetic "
              f"{2.0 * threshold * 100.0:.0f}% regression detected, "
              "in-threshold run passes")
        return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline", nargs="?", help="baseline artifact dir")
    parser.add_argument("current", nargs="?", help="current artifact dir")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="relative regression threshold (default 0.25)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate on synthetic artifacts")
    args = parser.parse_args(argv[1:])

    if args.self_test:
        return self_test(args.threshold)
    if not args.baseline or not args.current:
        parser.print_usage(sys.stderr)
        return 2
    try:
        regressions, notes = compare_dirs(args.baseline, args.current,
                                          args.threshold)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_diff: {e}", file=sys.stderr)
        return 2
    for note in notes:
        print(f"note: {note}")
    if regressions:
        for r in regressions:
            print(f"REGRESSION: {r}", file=sys.stderr)
        return 1
    print(f"bench_diff: no cpu_time regression beyond "
          f"{args.threshold * 100.0:.0f}% vs {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
