#!/usr/bin/env python3
"""Merge chrome://tracing exports from several Tracers into one timeline.

Each process in a traced request (client, leader, follower) owns its own
Tracer and exports its own chrome-trace JSON (Tracer::WriteChromeTrace).
Span ids are only unique per process, but every span carries the request
family's `trace_id` in args — minted once at the client and propagated in
the frame header — so the cross-process timeline is reassembled by:

  1. assigning each input file a distinct pid (with a process_name
     metadata event naming it after the file), keeping per-process span
     nesting intact on its own track;
  2. aligning clocks via otherData.epoch_steady_ns: every Tracer stamps
     its steady-clock origin at construction, so an event's absolute time
     is epoch_steady_ns/1000 + ts (microseconds).  The merged timeline is
     re-based to the earliest event;
  3. optionally filtering to one or more families (--trace-id), which is
     how "show me this one request across all three processes" works.

Clock alignment assumes the inputs come from one machine (one steady
clock), which is exactly the in-process/bench topology this repo runs.

Usage:
  trace_merge.py [--trace-id ID]... [-o OUT.json] client.json leader.json ...
  trace_merge.py --self-test
"""

import argparse
import json
import os
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or not isinstance(
            doc.get("traceEvents"), list):
        raise ValueError(f'{path}: no "traceEvents" list')
    return doc


def merge(docs, labels, trace_ids=None):
    """Merge parsed chrome-trace docs into one. `docs` and `labels` are
    parallel lists; `trace_ids` (a set of ints) filters events to those
    families when given. Returns the merged document."""
    merged = []
    dropped = 0
    epochs = []
    for doc in docs:
        other = doc.get("otherData") or {}
        epochs.append(int(other.get("epoch_steady_ns", 0)))
        dropped += int(other.get("dropped_events", 0))

    def keep(e):
        if e.get("ph") != "X":
            return False
        if trace_ids is None:
            return True
        return (e.get("args") or {}).get("trace_id") in trace_ids

    # Pass one: the earliest absolute timestamp among the *kept* events, so
    # the merged timeline starts at zero regardless of which tracer was
    # born first and of what the family filter discarded.
    base_us = None
    for doc, epoch in zip(docs, epochs):
        for e in doc["traceEvents"]:
            if not keep(e):
                continue
            ts = epoch / 1000.0 + float(e.get("ts", 0))
            if base_us is None or ts < base_us:
                base_us = ts
    if base_us is None:
        base_us = 0.0

    for pid, (doc, label, epoch) in enumerate(zip(docs, labels, epochs),
                                              start=1):
        kept = 0
        for e in doc["traceEvents"]:
            if not keep(e):
                continue
            out = dict(e)
            out["pid"] = pid
            out["ts"] = round(epoch / 1000.0 + float(e.get("ts", 0))
                              - base_us, 3)
            merged.append(out)
            kept += 1
        if kept:
            merged.append({"name": "process_name", "ph": "M", "pid": pid,
                           "tid": 0, "args": {"name": label}})

    # Metadata first, then events by time: a stable, diffable order.
    merged.sort(key=lambda e: (e.get("ph") != "M", e.get("ts", 0),
                               e.get("pid", 0),
                               (e.get("args") or {}).get("id", 0)))
    return {"traceEvents": merged, "displayTimeUnit": "ns",
            "otherData": {"dropped_events": dropped,
                          "merged_files": len(docs)}}


def self_test():
    """Golden test: two synthetic single-process traces share family 42;
    the merge must align clocks, renumber pids, name processes, and (with
    --trace-id 42 semantics) keep exactly that family."""
    client = {
        "traceEvents": [
            {"name": "net/call", "ph": "X", "pid": 1, "tid": 1, "ts": 5.0,
             "dur": 90.0,
             "args": {"id": 3, "parent": 0, "trace_id": 42,
                      "remote_parent": 0}},
            {"name": "idle", "ph": "X", "pid": 1, "tid": 1, "ts": 0.0,
             "dur": 2.0,
             "args": {"id": 4, "parent": 0, "trace_id": 0,
                      "remote_parent": 0}},
        ],
        "otherData": {"dropped_events": 0, "epoch_steady_ns": 1_000_000},
    }
    server = {
        "traceEvents": [
            {"name": "net/request", "ph": "X", "pid": 1, "tid": 2,
             "ts": 10.0, "dur": 60.0,
             "args": {"id": 7, "parent": 6, "trace_id": 42,
                      "remote_parent": 3}},
        ],
        "otherData": {"dropped_events": 1, "epoch_steady_ns": 1_020_000},
    }
    golden = {
        "traceEvents": [
            {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
             "args": {"name": "client"}},
            {"name": "process_name", "ph": "M", "pid": 2, "tid": 0,
             "args": {"name": "server"}},
            {"name": "net/call", "ph": "X", "pid": 1, "tid": 1, "ts": 0.0,
             "dur": 90.0,
             "args": {"id": 3, "parent": 0, "trace_id": 42,
                      "remote_parent": 0}},
            {"name": "net/request", "ph": "X", "pid": 2, "tid": 2,
             "ts": 25.0, "dur": 60.0,
             "args": {"id": 7, "parent": 6, "trace_id": 42,
                      "remote_parent": 3}},
        ],
        "displayTimeUnit": "ns",
        "otherData": {"dropped_events": 1, "merged_files": 2},
    }
    # The family filter keeps net/call and net/request and drops the
    # untraced idle span.  Clock math: client epoch 1.0 ms, server epoch
    # 1.02 ms; earliest family event is net/call at 1000 + 5 = 1005 us, so
    # net/request lands at 1020 + 10 - 1005 = 25 us.
    got = merge([client, server], ["client", "server"], trace_ids={42})
    if got != golden:
        print("trace_merge self-test FAILED", file=sys.stderr)
        print("got:    " + json.dumps(got, sort_keys=True), file=sys.stderr)
        print("golden: " + json.dumps(golden, sort_keys=True),
              file=sys.stderr)
        return 1
    # Unfiltered, the untraced span survives and becomes the new t=0.
    unfiltered = merge([client, server], ["client", "server"])
    names = [e["name"] for e in unfiltered["traceEvents"]
             if e.get("ph") == "X"]
    if names != ["idle", "net/call", "net/request"]:
        print(f"trace_merge self-test FAILED: unfiltered order {names}",
              file=sys.stderr)
        return 1
    # After the metadata rows: idle re-bases to 0, net/call lands at +5 us.
    if unfiltered["traceEvents"][3]["ts"] != 5.0:
        print("trace_merge self-test FAILED: unfiltered re-base",
              file=sys.stderr)
        return 1
    print("trace_merge self-test OK")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("files", nargs="*", help="chrome-trace JSON inputs")
    parser.add_argument("--trace-id", action="append", type=int, default=None,
                        metavar="ID",
                        help="keep only this request family (repeatable)")
    parser.add_argument("-o", "--out", default=None,
                        help="write merged JSON here (default stdout)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the embedded golden test and exit")
    args = parser.parse_args(argv[1:])

    if args.self_test:
        return self_test()
    if not args.files:
        parser.error("no input files (or --self-test)")

    try:
        docs = [load(path) for path in args.files]
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"trace_merge: {e}", file=sys.stderr)
        return 1
    labels = [os.path.splitext(os.path.basename(p))[0] for p in args.files]
    trace_ids = set(args.trace_id) if args.trace_id else None
    merged = merge(docs, labels, trace_ids)
    text = json.dumps(merged, indent=1)
    if args.out:
        with open(args.out, "w") as f:
            f.write(text + "\n")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
