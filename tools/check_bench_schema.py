#!/usr/bin/env python3
"""Schema gate for benchmark artifacts.

Every BENCH_<name>.json the bench harness emits must be one valid JSON
object carrying, besides google-benchmark's own "context"/"benchmarks"
members, the observability blocks the shared bench main injects:

  "stages"  — per-span-name {"count": N, "total_ns": M} aggregates
  "metrics" — engine counter name -> value

A sibling TRACE_<name>.json (written by --trace-out) is validated as
chrome://tracing JSON when present: a "traceEvents" list of complete
("ph" == "X") events with explicit parent ids in args.

Usage: check_bench_schema.py BENCH_foo.json [BENCH_bar.json ...]
"""

import json
import os
import sys


def fail(path, msg):
    print(f"{path}: {msg}", file=sys.stderr)
    return 1


def check_bench(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, f"not readable as JSON: {e}")
    if not isinstance(doc, dict):
        return fail(path, "top level is not a JSON object")
    errors = 0
    if not isinstance(doc.get("benchmarks"), list) or not doc["benchmarks"]:
        errors += fail(path, 'missing or empty "benchmarks" list')
    for key in ("stages", "metrics"):
        if not isinstance(doc.get(key), dict):
            errors += fail(path, f'missing "{key}" object')
    for name, stats in (doc.get("stages") or {}).items():
        if (not isinstance(stats, dict) or "count" not in stats
                or "total_ns" not in stats):
            errors += fail(path, f'stage "{name}" lacks count/total_ns')
    if "service" in os.path.basename(path):
        errors += check_service(path, doc)
    if "incremental" in os.path.basename(path):
        errors += check_incremental(path, doc)
    if "vectorized" in os.path.basename(path):
        errors += check_vectorized(path, doc)
    return errors


def check_service(path, doc):
    """The service bench must report tail latency and backpressure: every
    benchmark row carries client-side p50/p99/p999 plus shed/retry
    counters, the *server-side* per-tenant tails (tenant_p50_us/p99/p999,
    from the tenant's labeled latency histograms) and the follower
    replication lag observed after the run, and the net.* instruments the
    server emits must appear in "metrics"."""
    errors = 0
    required = ("p50_us", "p99_us", "p999_us", "shed", "retries", "failures",
                "tenant_p50_us", "tenant_p99_us", "tenant_p999_us",
                "replication_lag")
    for row in doc.get("benchmarks") or []:
        name = row.get("name", "?")
        for key in required:
            if not isinstance(row.get(key), (int, float)):
                errors += fail(path, f'benchmark "{name}" lacks counter '
                               f'"{key}"')
    metrics = doc.get("metrics") or {}
    for counter in ("net.requests", "net.frames_sent"):
        if counter not in metrics:
            errors += fail(path, f'missing "{counter}" in "metrics"')
    return errors


def check_incremental(path, doc):
    """The incremental bench must carry both sides of the comparison the
    sublinearity claim rests on (from-scratch vs ViewCache rows at the same
    sizes), and the cached rows must prove the cache actually ran: every
    BM_IncrementalViewUpdate row needs refreshes/fallbacks counters."""
    errors = 0
    rows = doc.get("benchmarks") or []
    families = {"BM_FromScratchViewUpdate": 0, "BM_IncrementalViewUpdate": 0,
                "BM_DeltaAbsorption": 0}
    for row in rows:
        name = row.get("name", "?")
        family = name.split("/", 1)[0]
        if family in families:
            families[family] += 1
        if family == "BM_IncrementalViewUpdate":
            for key in ("refreshes", "fallbacks"):
                if not isinstance(row.get(key), (int, float)):
                    errors += fail(path, f'benchmark "{name}" lacks counter '
                                   f'"{key}"')
    for family, count in families.items():
        if count == 0:
            errors += fail(path, f'no "{family}" rows')
    return errors


def check_vectorized(path, doc):
    """The vectorized bench must carry all three execution modes
    (interpreter / vectorized / bytecode) for every family at every size,
    and must prove the backend acceptance property: on the eval-heavy
    families (SelJoin, ProjectJoin) the vectorized backend's cpu_time beats
    the interpreter's at the two largest sizes. WideJoin is exempt — its
    cost is output tuple materialization, which no backend choice moves."""
    errors = 0
    times = {}  # (family, mode, size) -> cpu_time
    for row in doc.get("benchmarks") or []:
        name = row.get("name", "?")
        if "/" not in name or not name.startswith("BM_"):
            continue
        head, size = name.split("/", 1)
        for mode in ("Interpreter", "Vectorized", "Bytecode"):
            if head.endswith(mode):
                family = head[len("BM_"):-len(mode)]
                try:
                    times[(family, mode, int(size))] = row["cpu_time"]
                except (KeyError, ValueError):
                    errors += fail(path, f'row "{name}" lacks cpu_time')
    families = sorted({f for f, _, _ in times})
    for expected in ("SelJoin", "ProjectJoin", "WideJoin"):
        if expected not in families:
            errors += fail(path, f'no "{expected}" rows')
    for family in families:
        sizes = {s for f, m, s in times if f == family}
        for mode in ("Interpreter", "Vectorized", "Bytecode"):
            missing = sizes - {s for f, m, s in times
                               if f == family and m == mode}
            if missing:
                errors += fail(path, f"{family}: {mode} missing sizes "
                               f"{sorted(missing)}")
    for family in ("SelJoin", "ProjectJoin"):
        sizes = sorted({s for f, _, s in times if f == family})[-2:]
        for size in sizes:
            interp = times.get((family, "Interpreter", size))
            vec = times.get((family, "Vectorized", size))
            if interp is None or vec is None:
                continue  # already reported as missing above
            if vec >= interp:
                errors += fail(path, f"{family}/{size}: vectorized cpu_time "
                               f"{vec:.0f} does not beat interpreter "
                               f"{interp:.0f}")
    return errors


def check_trace(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, f"not readable as JSON: {e}")
    events = doc.get("traceEvents") if isinstance(doc, dict) else doc
    if not isinstance(events, list):
        return fail(path, 'no "traceEvents" list')
    errors = 0
    for e in events:
        if e.get("ph") != "X" or "dur" not in e or "ts" not in e:
            errors += fail(path, f"malformed complete event: {e}")
            break
        if "parent" not in e.get("args", {}):
            errors += fail(path, f"event lacks args.parent: {e}")
            break
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    errors = 0
    for path in argv[1:]:
        errors += check_bench(path)
        trace = os.path.join(
            os.path.dirname(path),
            os.path.basename(path).replace("BENCH_", "TRACE_", 1))
        if trace != path and os.path.exists(trace):
            errors += check_trace(trace)
    if errors:
        return 1
    print(f"checked {len(argv) - 1} artifact(s): schema OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
